"""diff_runs gating: wall thresholds, counter tolerance, quantiles."""

from repro.obs import (
    DiffThresholds,
    MetricsRegistry,
    SpanRecord,
    TraceData,
    diff_runs,
    render_diff,
)


def _trace(walls=None, counters=None, hist=None):
    """TraceData with one root span per (name, wall) pair."""
    spans = tuple(
        SpanRecord(name=name, start=0.0, duration=wall, pid=1, attrs={})
        for name, wall in (walls or {}).items()
    )
    registry = MetricsRegistry()
    for name, value in (counters or {}).items():
        registry.add(name, value)
    for name, values in (hist or {}).items():
        for v in values:
            registry.observe(name, v)
    return TraceData(spans=spans, metrics=registry.snapshot())


def test_identical_runs_are_ok():
    a = _trace({"search": 1.0}, {"evals": 16})
    diff = diff_runs(a, _trace({"search": 1.0}, {"evals": 16}))
    assert diff.ok
    assert diff.counters == []
    assert diff.n_shared_paths() == 1


def test_wall_regression_beyond_threshold_flags():
    a = _trace({"search": 1.0})
    b = _trace({"search": 1.30})
    diff = diff_runs(a, b, DiffThresholds(max_wall_delta=0.25))
    (delta,) = [p for p in diff.paths if p.regressed]
    assert delta.path == "search"
    assert abs(delta.ratio - 1.30) < 1e-12
    assert not diff.ok
    assert "search" in diff.regressions()[0]


def test_wall_growth_within_threshold_passes():
    diff = diff_runs(
        _trace({"search": 1.0}),
        _trace({"search": 1.2}),
        DiffThresholds(max_wall_delta=0.25),
    )
    assert diff.ok


def test_min_wall_floor_ignores_noise_spans():
    # 3x on a 1ms span is scheduler jitter, not a regression.
    diff = diff_runs(
        _trace({"tiny": 0.001}),
        _trace({"tiny": 0.003}),
        DiffThresholds(max_wall_delta=0.25, min_wall_s=0.005),
    )
    assert diff.ok
    # Dropping the floor flags it.
    diff = diff_runs(
        _trace({"tiny": 0.001}),
        _trace({"tiny": 0.003}),
        DiffThresholds(max_wall_delta=0.25, min_wall_s=0.0),
    )
    assert not diff.ok


def test_structural_paths_reported_but_never_wall_regressed():
    diff = diff_runs(_trace({"old": 1.0}), _trace({"new": 1.0}))
    by_path = {p.path: p for p in diff.paths}
    assert by_path["old"].current is None
    assert by_path["new"].baseline is None
    assert not by_path["old"].regressed and not by_path["new"].regressed
    assert diff.n_shared_paths() == 0


def test_counter_drift_fails_at_zero_tolerance():
    diff = diff_runs(
        _trace(counters={"evals": 16}), _trace(counters={"evals": 17})
    )
    (delta,) = diff.counters
    assert delta.regressed and delta.delta == 1
    assert not diff.ok


def test_counter_appear_disappear_fails_at_zero_tolerance():
    diff = diff_runs(
        _trace(counters={"evals": 16}),
        _trace(counters={"evals": 16, "memo_hits": 3}),
    )
    (delta,) = diff.counters
    assert delta.name == "memo_hits"
    assert delta.baseline is None and delta.regressed


def test_counter_tolerance_loosens_gate():
    thr = DiffThresholds(counter_tolerance=0.10)
    # 5% drift passes, 20% drift fails, appearing counters pass.
    assert diff_runs(
        _trace(counters={"hits": 100}), _trace(counters={"hits": 105}), thr
    ).ok
    assert not diff_runs(
        _trace(counters={"hits": 100}), _trace(counters={"hits": 120}), thr
    ).ok
    assert diff_runs(
        _trace(counters={}), _trace(counters={"hits": 3}), thr
    ).ok


def test_quantile_deltas_informational_by_default():
    a = _trace(hist={"lat": [1.0] * 10})
    b = _trace(hist={"lat": [2.0] * 10})
    diff = diff_runs(a, b)
    assert diff.quantiles and not any(q.regressed for q in diff.quantiles)
    assert diff.ok


def test_quantile_gate_when_threshold_set():
    a = _trace(hist={"lat": [1.0] * 10})
    b = _trace(hist={"lat": [2.0] * 10})
    diff = diff_runs(a, b, DiffThresholds(max_quantile_delta=0.5))
    assert any(q.regressed for q in diff.quantiles)
    assert not diff.ok
    assert any("histogram" in msg for msg in diff.regressions())


def test_render_diff_pass_and_fail_shapes():
    ok = render_diff(
        diff_runs(_trace({"s": 1.0}, {"n": 1}), _trace({"s": 1.0}, {"n": 1}))
    )
    assert "counters: identical" in ok
    assert ok.rstrip().endswith("RESULT: ok")

    bad = render_diff(
        diff_runs(
            _trace({"s": 1.0}, {"n": 1}), _trace({"s": 2.0}, {"n": 2})
        )
    )
    assert "REGRESSED" in bad
    assert "RESULT: 2 regression(s)" in bad
