"""Span records and the tracer: nesting, attach, picklability."""

import os
import pickle

from repro.obs import SpanRecord, Tracer, walk_spans


class TestTracer:
    def test_nesting_follows_open_close_order(self):
        tracer = Tracer()
        outer = tracer.open("outer", {})
        inner = tracer.open("inner", {"k": 1})
        tracer.close(inner)
        leaf2 = tracer.open("leaf2", {})
        tracer.close(leaf2)
        tracer.close(outer)

        roots = tracer.finished_roots()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner", "leaf2"]
        assert roots[0].children[0].attrs == {"k": 1}
        assert tracer.current is None

    def test_durations_are_stamped_and_nonnegative(self):
        tracer = Tracer()
        rec = tracer.open("a", {})
        tracer.close(rec)
        assert rec.duration >= 0.0
        assert rec.start >= 0.0
        assert rec.pid == os.getpid()

    def test_close_unwinds_unclosed_children(self):
        # Exception unwinding can close an outer span while an inner one
        # is still open; the stack must recover.
        tracer = Tracer()
        outer = tracer.open("outer", {})
        tracer.open("dangling", {})
        tracer.close(outer)
        assert tracer.current is None
        assert [r.name for r in tracer.finished_roots()] == ["outer"]

    def test_attach_grafts_under_current_open_span(self):
        worker = Tracer()
        t = worker.open("task:w", {})
        worker.close(t)

        parent = Tracer()
        plan = parent.open("plan.execute", {})
        parent.attach(list(worker.finished_roots()))
        parent.close(plan)

        roots = parent.finished_roots()
        assert [c.name for c in roots[0].children] == ["task:w"]

    def test_attach_without_open_span_extends_roots(self):
        worker = Tracer()
        t = worker.open("task:w", {})
        worker.close(t)
        parent = Tracer()
        parent.attach(list(worker.finished_roots()))
        assert [r.name for r in parent.finished_roots()] == ["task:w"]

    def test_n_spans_counts_whole_forest(self):
        tracer = Tracer()
        a = tracer.open("a", {})
        b = tracer.open("b", {})
        tracer.close(b)
        tracer.close(a)
        c = tracer.open("c", {})
        tracer.close(c)
        assert tracer.n_spans() == 3


class TestSpanRecord:
    def _tree(self):
        leaf = SpanRecord("leaf", 0.1, 0.2, 42, {"x": 1})
        return SpanRecord("root", 0.0, 1.0, 42, {}, [leaf])

    def test_walk_is_depth_first_preorder(self):
        root = self._tree()
        assert [s.name for s in root.walk()] == ["root", "leaf"]
        assert [s.name for s in walk_spans([root, root])] == [
            "root",
            "leaf",
            "root",
            "leaf",
        ]

    def test_find_by_name(self):
        root = self._tree()
        assert root.find("leaf").attrs == {"x": 1}
        assert root.find("absent") is None

    def test_records_pickle_round_trip(self):
        root = self._tree()
        clone = pickle.loads(pickle.dumps(root))
        assert clone == root
        assert clone.children[0].name == "leaf"
