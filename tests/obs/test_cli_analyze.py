"""CLI surface for PR 8: --archive, trace --analyze/--diff, --progress."""

import re
import sys

import pytest

from repro.cli import main
from repro.obs import RunArchive, SpanRecord, configure_logging, render_span_tree


@pytest.fixture(autouse=True)
def _restore_logging():
    yield
    configure_logging(stream=sys.stderr)


SEARCH_ARGV = [
    "search",
    "--family",
    "wavefront",
    "--param",
    "width=2",
    "--param",
    "height=2",
]


# -- --archive ---------------------------------------------------------
def test_archive_flag_records_bundle(tmp_path, capsys):
    root = str(tmp_path / "arch")
    assert main(SEARCH_ARGV + ["--archive", root]) == 0
    out = capsys.readouterr().out
    assert "archived run" in out

    archive = RunArchive(root)
    (rec,) = archive.runs()
    assert rec.command == "search"
    assert rec.meta["argv"][0] == "search"
    assert rec.meta["machine"] == "perlmutter-like"
    data = rec.load()
    assert data.n_spans() > 0
    assert data.metrics.counter("search.schedules_evaluated") == 16


def test_archive_accumulates_runs(tmp_path, capsys):
    root = str(tmp_path / "arch")
    assert main(SEARCH_ARGV + ["--archive", root]) == 0
    assert main(SEARCH_ARGV + ["--archive", root]) == 0
    capsys.readouterr()
    assert len(RunArchive(root).runs()) == 2


# -- trace --analyze ---------------------------------------------------
def test_trace_analyze_on_archive_root(tmp_path, capsys):
    root = str(tmp_path / "arch")
    assert main(SEARCH_ARGV + ["--range-shards", "4", "--archive", root]) == 0
    capsys.readouterr()
    assert main(["trace", root, "--analyze"]) == 0
    out = capsys.readouterr().out
    assert "trace analysis:" in out
    assert "critical path" in out
    assert "plan.execute" in out
    # The critical path starts at the plan root and descends into one
    # of the four parallel shard tasks.
    assert "3 sibling(s)" in out


# -- trace --diff ------------------------------------------------------
def test_trace_diff_same_config_passes_counters_exact(tmp_path, capsys):
    a, b = str(tmp_path / "a"), str(tmp_path / "b")
    assert main(SEARCH_ARGV + ["--archive", a]) == 0
    assert main(SEARCH_ARGV + ["--archive", b]) == 0
    capsys.readouterr()
    # Same config twice: counters identical, walls within the loose CI
    # budget; the gate passes.
    assert (
        main(["trace", "--diff", a, b, "--max-wall-delta", "25.0"]) == 0
    )
    out = capsys.readouterr().out
    assert "counters: identical" in out
    assert "RESULT: ok" in out


def _slowed_copy(src_root, dst_root, factor=2.0):
    """Archive a copy of src's latest run with every span slowed."""
    rec = RunArchive(src_root).latest()
    data = rec.load()

    def slow(rec_):
        rec_.duration *= factor
        for child in rec_.children:
            slow(child)

    for root in data.spans:
        slow(root)
    RunArchive(dst_root).record(
        list(data.spans), data.metrics, command="search", run_id="slowed"
    )


def test_trace_diff_flags_injected_slowdown(tmp_path, capsys):
    base = str(tmp_path / "base")
    slow = str(tmp_path / "slow")
    assert main(SEARCH_ARGV + ["--archive", base]) == 0
    _slowed_copy(base, slow)
    capsys.readouterr()
    # A 2x per-stage slowdown must trip the default wall gate.  The
    # min-wall floor is zeroed because the batch sim backend finishes
    # this tiny search in well under the default 5ms noise floor.
    with pytest.raises(SystemExit, match="regression"):
        main(["trace", "--diff", base, slow, "--min-wall-ms", "0"])
    out = capsys.readouterr().out
    assert "REGRESSED" in out
    # Counters were copied verbatim: the regression is wall-only.
    assert "counters: identical" in out


def test_trace_diff_counter_drift_fails(tmp_path, capsys):
    a, b = str(tmp_path / "a"), str(tmp_path / "b")
    assert main(SEARCH_ARGV + ["--archive", a]) == 0
    assert main(
        # height=3: a bigger space, so counters legitimately differ.
        SEARCH_ARGV[:-1] + ["height=3", "--archive", b]
    ) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit, match="regression"):
        main(["trace", "--diff", a, b, "--max-wall-delta", "1000"])
    assert "counter" in capsys.readouterr().out


def test_trace_diff_requires_two_paths(tmp_path):
    with pytest.raises(SystemExit, match="exactly two"):
        main(["trace", "--diff", str(tmp_path / "only-one")])
    with pytest.raises(SystemExit, match="renders one trace"):
        main(["trace", str(tmp_path / "a"), str(tmp_path / "b")])


# -- --progress --------------------------------------------------------
def _progress_lines(err, label="search wavefront"):
    return [line for line in err.splitlines() if line.startswith(label)]


def _done_counts(lines):
    return [int(re.search(r"\((\d+)/16\)", line).group(1)) for line in lines]


def test_search_progress_serial_monotone_to_100(capsys):
    assert main(SEARCH_ARGV + ["--progress"]) == 0
    err = capsys.readouterr().err
    lines = _progress_lines(err)
    assert lines, err
    done = _done_counts(lines)
    assert done == sorted(done)
    # Exhaustive 2x2 wavefront: 16 enumerated leaves, none cut, so the
    # meter ends at exactly 100% = evaluated + pruned + cut.
    assert done[-1] == 16
    assert "100.0%" in lines[-1] and "done" in lines[-1]


def test_search_progress_range_sharded_monotone_to_100(capsys):
    argv = SEARCH_ARGV + ["--range-shards", "4", "--progress"]
    assert main(argv) == 0
    captured = capsys.readouterr()
    lines = _progress_lines(captured.err)
    assert lines, captured.err
    done = _done_counts(lines)
    assert done == sorted(done)
    assert done[-1] == 16
    assert "100.0%" in lines[-1] and "done" in lines[-1]
    # Sharding must not change the search result accounting.
    assert "evaluated 16 schedules" in captured.out


def test_search_progress_requires_exhaustive():
    with pytest.raises(SystemExit, match="--progress requires"):
        main(SEARCH_ARGV + ["--strategy", "random", "--progress"])


def test_suite_progress_counts_tasks(capsys):
    assert main(["suite", "smoke", "--progress"]) == 0
    err = capsys.readouterr().err
    lines = [line for line in err.splitlines() if line.startswith("suite smoke")]
    assert lines, err
    assert "(7/7)" in lines[-1] and "done" in lines[-1]


# -- renderer sibling ordering ----------------------------------------
def test_render_span_tree_orders_siblings_by_start():
    # Absorb order is completion order under a shard pool; the renderer
    # must re-sort siblings by start time.
    kids = [
        SpanRecord(name="late", start=5.0, duration=1.0, pid=1),
        SpanRecord(name="early", start=1.0, duration=1.0, pid=1),
        SpanRecord(name="mid", start=3.0, duration=1.0, pid=1),
    ]
    root = SpanRecord(
        name="root", start=0.0, duration=6.0, pid=1, children=kids
    )
    lines = render_span_tree([root])
    order = [
        line.split()[1].lstrip("|`- ")
        for line in lines[1:]
    ]
    assert order == ["early", "mid", "late"]


def test_render_span_tree_tie_breaks_by_pid_then_name():
    kids = [
        SpanRecord(name="b", start=1.0, duration=1.0, pid=2),
        SpanRecord(name="a", start=1.0, duration=1.0, pid=2),
        SpanRecord(name="z", start=1.0, duration=1.0, pid=1),
    ]
    root = SpanRecord(
        name="root", start=0.0, duration=3.0, pid=1, children=kids
    )
    lines = render_span_tree([root])
    names = [line.split()[1].lstrip("|`- ") for line in lines[1:]]
    assert names == ["z", "a", "b"]
