"""The ambient obs API: no-op spans, captures, stages, worker merging."""

from repro import obs


class TestDisabledTracing:
    def test_span_is_shared_noop_singleton(self):
        # Zero-cost-when-disabled: no allocation, no record, same object
        # every call.
        h1 = obs.span("anything", key="value")
        h2 = obs.span("other")
        assert h1 is h2
        with h1 as h:
            h.set(more="attrs")  # swallowed
        assert not obs.tracing_active()

    def test_metrics_always_on(self):
        before = obs.metrics_snapshot()
        obs.add("events", 3)
        obs.observe("lat", 0.5)
        delta = obs.metrics_snapshot().diff(before)
        assert delta.counter("events") == 3
        assert delta.histograms["lat"] == (0.5,)


class TestCapture:
    def test_capture_without_trace_collects_metrics_only(self):
        with obs.capture() as cap:
            obs.add("c")
            with obs.span("ignored"):
                pass
        assert cap.spans == ()
        assert cap.n_spans == 0
        assert cap.metrics.counter("c") == 1

    def test_capture_with_trace_collects_span_forest(self):
        with obs.capture(trace=True) as cap:
            assert obs.tracing_active()
            with obs.span("outer", kind="test"):
                with obs.span("inner"):
                    pass
            with obs.span("second"):
                pass
        assert not obs.tracing_active()
        assert [r.name for r in cap.spans] == ["outer", "second"]
        assert [c.name for c in cap.spans[0].children] == ["inner"]
        assert cap.spans[0].attrs == {"kind": "test"}
        assert cap.n_spans == 3

    def test_span_handle_set_updates_attrs(self):
        with obs.capture(trace=True) as cap:
            with obs.span("s", a=1) as h:
                h.set(b=2)
        assert cap.spans[0].attrs == {"a": 1, "b": 2}

    def test_capture_delta_excludes_outside_activity(self):
        obs.add("c", 10)
        with obs.capture() as cap:
            obs.add("c", 2)
        assert cap.metrics.counter("c") == 2

    def test_nested_capture_restores_outer_tracer(self):
        with obs.capture(trace=True) as outer:
            with obs.span("before"):
                pass
            with obs.capture(trace=True) as inner:
                with obs.span("inside"):
                    pass
            assert obs.tracing_active()
            with obs.span("after"):
                pass
        assert [r.name for r in inner.spans] == ["inside"]
        assert [r.name for r in outer.spans] == ["before", "after"]


class TestStageAndTaskScope:
    def test_stage_times_and_reports_to_enclosing_task_scope(self):
        with obs.task_scope("wl-a", kind="suite-cells", index=3) as scope:
            with obs.stage("build"):
                pass
            with obs.stage("search") as st:
                pass
        assert [name for name, _ in scope.stages] == ["build", "search"]
        assert all(wall >= 0.0 for _, wall in scope.stages)
        assert st.duration >= 0.0
        assert scope.duration >= sum(wall for _, wall in scope.stages)

    def test_stage_without_task_scope_still_times(self):
        with obs.stage("lonely") as st:
            pass
        assert st.duration >= 0.0

    def test_task_scope_emits_task_span_when_tracing(self):
        with obs.capture(trace=True) as cap:
            with obs.task_scope("wl-a", kind="suite-cells", index=3):
                with obs.stage("build"):
                    pass
        (root,) = cap.spans
        assert root.name == "task:wl-a"
        assert root.attrs == {"kind": "suite-cells", "index": 3}
        assert [c.name for c in root.children] == ["stage:build"]

    def test_task_scopes_nest(self):
        with obs.task_scope("outer") as outer:
            with obs.stage("a"):
                pass
            with obs.task_scope("inner") as inner:
                with obs.stage("b"):
                    pass
            with obs.stage("c"):
                pass
        assert [n for n, _ in outer.stages] == ["a", "c"]
        assert [n for n, _ in inner.stages] == ["b"]


class TestWorkerCaptureAndAbsorb:
    def test_worker_capture_isolates_metrics(self):
        obs.add("parent", 1)
        with obs.worker_capture() as cap:
            obs.add("task", 2)
        assert cap.snapshot.counter("task") == 2
        assert cap.snapshot.counter("parent") == 0
        # Parent registry untouched by the task's counts until absorbed.
        assert obs.metrics_snapshot().counter("task") == 0
        obs.absorb(cap.spans, cap.snapshot)
        assert obs.metrics_snapshot().counter("task") == 2
        assert obs.metrics_snapshot().counter("parent") == 1

    def test_worker_capture_traces_when_asked(self):
        with obs.worker_capture(trace=True) as cap:
            with obs.span("task:w"):
                pass
        assert [r.name for r in cap.spans] == ["task:w"]

    def test_absorb_grafts_spans_under_current_span(self):
        with obs.worker_capture(trace=True) as worker:
            with obs.span("task:w"):
                pass
        with obs.capture(trace=True) as cap:
            with obs.span("plan.execute"):
                obs.absorb(worker.spans, worker.snapshot)
        (root,) = cap.spans
        assert root.name == "plan.execute"
        assert [c.name for c in root.children] == ["task:w"]

    def test_absorb_without_tracer_keeps_metrics(self):
        with obs.worker_capture(trace=True) as worker:
            with obs.span("task:w"):
                pass
            obs.add("c")
        obs.absorb(worker.spans, worker.snapshot)  # no tracer: spans dropped
        assert obs.metrics_snapshot().counter("c") == 1
