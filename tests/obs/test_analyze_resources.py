"""Resource attribution and worker utilization over telemetry samples."""

import pytest

from repro.obs import (
    MetricsSnapshot,
    ResourceSample,
    SpanRecord,
    analysis_to_dict,
    render_analysis,
    resource_stats,
    worker_stats,
)
from repro.obs.analyze import _timeline
from repro.obs.trace_io import TraceData


def _sample(ts, pid, path, rss=100, cpu=0.0):
    return ResourceSample(
        ts=ts,
        pid=pid,
        path=path,
        rss_bytes=rss,
        cpu_utime_s=cpu,
        cpu_stime_s=0.0,
        gc_collections=0,
    )


def _sharded_trace():
    """Parent pid 1 runs plan.execute; pids 2/3 each ran one task."""
    t_a = SpanRecord(name="task:a", start=0.1, duration=0.4, pid=2)
    t_b = SpanRecord(name="task:b", start=0.5, duration=0.5, pid=3)
    root = SpanRecord(
        name="plan.execute",
        start=0.0,
        duration=1.0,
        pid=1,
        children=[t_a, t_b],
    )
    samples = (
        _sample(0.1, 2, "plan.execute/task:a", rss=300, cpu=0.0),
        _sample(0.5, 2, "plan.execute/task:a", rss=500, cpu=0.3),
        _sample(0.5, 3, "plan.execute/task:b", rss=400, cpu=0.0),
        _sample(1.0, 3, "plan.execute/task:b", rss=350, cpu=0.4),
    )
    return TraceData(
        meta={"command": "search"},
        spans=(root,),
        metrics=MetricsSnapshot(counters={"n": 2}),
        samples=samples,
    )


# -- resource_stats ----------------------------------------------------
def test_samples_credit_every_path_prefix():
    stats = resource_stats(
        [
            _sample(0.0, 1, "a/b/c", rss=10, cpu=0.0),
            _sample(1.0, 1, "a/b/c", rss=20, cpu=0.5),
        ]
    )
    assert set(stats) == {"a", "a/b", "a/b/c"}
    for path in ("a", "a/b", "a/b/c"):
        entry = stats[path]
        assert entry.rss_max_bytes == 20
        assert entry.cpu_s == pytest.approx(0.5)
        assert entry.wall_s == pytest.approx(1.0)
        assert entry.cpu_pct == pytest.approx(50.0)


def test_cpu_deltas_are_per_pid_not_cross_process():
    # Two pids sampled on the same path: deltas must be computed within
    # each pid's cumulative counter series, then summed.
    stats = resource_stats(
        [
            _sample(0.0, 1, "p", cpu=10.0),
            _sample(1.0, 1, "p", cpu=10.2),
            _sample(0.0, 2, "p", cpu=0.0),
            _sample(1.0, 2, "p", cpu=0.7),
        ]
    )
    assert stats["p"].cpu_s == pytest.approx(0.9)
    assert stats["p"].wall_s == pytest.approx(2.0)


def test_pathless_samples_are_ignored():
    assert resource_stats([_sample(0.0, 1, "")]) == {}


def test_single_sample_path_has_zero_cpu_and_wall():
    stats = resource_stats([_sample(0.0, 1, "p", rss=42)])
    assert stats["p"].rss_max_bytes == 42
    assert stats["p"].cpu_s == 0.0
    assert stats["p"].cpu_pct == 0.0  # wall 0 guard


# -- worker_stats ------------------------------------------------------
def test_worker_stats_measure_utilization_over_execute_window():
    workers = worker_stats(_sharded_trace())
    assert [w.pid for w in workers] == [2, 3]
    a, b = workers
    assert a.n_tasks == 1
    assert a.busy_s == pytest.approx(0.4)
    assert a.window_s == pytest.approx(1.0)
    assert a.utilization == pytest.approx(0.4)
    assert a.rss_max_bytes == 500
    assert a.cpu_s == pytest.approx(0.3)
    assert b.utilization == pytest.approx(0.5)


def test_parent_pid_spans_are_not_workers():
    root = SpanRecord(
        name="plan.execute",
        start=0.0,
        duration=1.0,
        pid=1,
        children=[SpanRecord(name="task:a", start=0.0, duration=1.0, pid=1)],
    )
    assert worker_stats(TraceData(spans=(root,))) == []


def test_timeline_marks_busy_bins():
    bar = _timeline([(0.0, 0.5)], (0.0, 1.0), width=10)
    assert bar == "#####....."
    assert _timeline([], (0.0, 0.0), width=10) == ""


# -- rendering / JSON payload ------------------------------------------
def test_render_analysis_includes_resource_and_worker_tables():
    out = render_analysis(_sharded_trace())
    assert "resources by span path (4 samples" in out
    assert "worker utilization (plan.execute window)" in out
    assert "plan.execute/task:a" in out
    # The timeline column renders busy/idle cells.
    assert "#" in out.splitlines()[-1] or "#" in out


def test_analysis_to_dict_payload_shape():
    payload = analysis_to_dict(_sharded_trace())
    assert payload["n_spans"] == 3
    assert payload["n_samples"] == 4
    assert payload["meta"] == {"command": "search"}
    assert payload["counters"] == {"n": 2}
    top = payload["paths"][0]
    assert set(top) == {"path", "count", "total_s", "self_s", "max_s"}
    assert top["path"] == "plan.execute"
    step = payload["critical_path"][0]
    assert step["name"] == "plan.execute"
    assert step["fraction"] == 1.0
    res = {r["path"]: r for r in payload["resources"]}
    assert res["plan.execute/task:a"]["rss_max_bytes"] == 500
    assert res["plan.execute/task:a"]["cpu_pct"] == pytest.approx(75.0)
    workers = {w["pid"]: w for w in payload["workers"]}
    assert workers[3]["utilization"] == pytest.approx(0.5)


def test_analysis_to_dict_without_samples_is_empty_but_stable():
    root = SpanRecord(name="r", start=0.0, duration=0.1, pid=1)
    payload = analysis_to_dict(TraceData(spans=(root,)))
    assert payload["resources"] == []
    assert payload["workers"] == []
    assert payload["n_samples"] == 0
