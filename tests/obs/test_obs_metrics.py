"""Metrics registry: snapshots, deltas, merges, digests, histograms."""

import pickle

from repro.obs import MetricsRegistry, MetricsSnapshot, summarize_histogram


class TestRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.add("c")
        reg.add("c", 4)
        reg.gauge("g", 2.5)
        reg.gauge("g", 3.5)
        reg.observe("h", 1.0)
        reg.observe("h", 2.0)
        snap = reg.snapshot()
        assert snap.counter("c") == 5
        assert snap.counter("absent") == 0
        assert snap.gauges["g"] == 3.5
        assert snap.histograms["h"] == (1.0, 2.0)

    def test_snapshot_is_immutable_view(self):
        reg = MetricsRegistry()
        reg.add("c")
        snap = reg.snapshot()
        reg.add("c")
        assert snap.counter("c") == 1
        assert reg.snapshot().counter("c") == 2

    def test_merge_snapshot_sums_counters_extends_histograms(self):
        a = MetricsRegistry()
        a.add("c", 2)
        a.observe("h", 1.0)
        b = MetricsRegistry()
        b.add("c", 3)
        b.observe("h", 2.0)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap.counter("c") == 5
        assert snap.histograms["h"] == (1.0, 2.0)


class TestSnapshot:
    def test_diff_subtracts_counters_and_drops_histogram_prefix(self):
        reg = MetricsRegistry()
        reg.add("c", 2)
        reg.observe("h", 1.0)
        before = reg.snapshot()
        reg.add("c", 3)
        reg.add("new")
        reg.observe("h", 2.0)
        delta = reg.snapshot().diff(before)
        assert delta.counters == {"c": 3, "new": 1}
        assert delta.histograms == {"h": (2.0,)}

    def test_diff_drops_zero_deltas(self):
        reg = MetricsRegistry()
        reg.add("c", 2)
        before = reg.snapshot()
        delta = reg.snapshot().diff(before)
        assert delta.counters == {}
        assert delta.is_empty()

    def test_merged_is_commutative_on_counters(self):
        a = MetricsSnapshot(counters={"x": 1, "y": 2})
        b = MetricsSnapshot(counters={"y": 3, "z": 4})
        ab, ba = a.merged(b), b.merged(a)
        assert ab.counters == ba.counters == {"x": 1, "y": 5, "z": 4}

    def test_digest_covers_counters_only(self):
        a = MetricsSnapshot(counters={"x": 1}, gauges={"wall_s": 1.23})
        b = MetricsSnapshot(counters={"x": 1}, gauges={"wall_s": 9.99})
        c = MetricsSnapshot(counters={"x": 2})
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_digest_is_order_independent(self):
        a = MetricsSnapshot(counters={"x": 1, "y": 2})
        b = MetricsSnapshot(counters={"y": 2, "x": 1})
        assert a.digest() == b.digest()

    def test_snapshot_pickles(self):
        snap = MetricsSnapshot(
            counters={"c": 1}, gauges={"g": 2.0}, histograms={"h": (3.0,)}
        )
        assert pickle.loads(pickle.dumps(snap)) == snap


class TestHistogramSummary:
    def test_empty(self):
        assert summarize_histogram([]) == {"count": 0, "sum": 0.0}

    def test_quantiles_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]  # 1..100
        s = summarize_histogram(values)
        assert s["count"] == 100
        assert s["min"] == 1.0
        assert s["max"] == 100.0
        assert s["p50"] == 50.0
        assert s["p95"] == 95.0
        assert s["p99"] == 99.0

    def test_single_value(self):
        s = summarize_histogram([7.0])
        assert s["p50"] == s["p95"] == s["p99"] == 7.0
