"""CLI surface: --trace/--metrics flags, the trace subcommand, -v/-q."""

import json
import sys

import pytest

from repro.cli import main
from repro.obs import configure_logging, read_trace


@pytest.fixture(autouse=True)
def _restore_logging():
    # main() installs a stderr handler bound to capsys's capture stream;
    # rebind to the real stderr (at the default WARNING level) afterwards
    # so later tests never log into a torn-down capture object.
    yield
    configure_logging(stream=sys.stderr)


SEARCH_ARGV = [
    "search",
    "--family",
    "wavefront",
    "--param",
    "width=2",
    "--param",
    "height=2",
]


def test_search_trace_flag_writes_valid_jsonl(tmp_path, capsys):
    trace = str(tmp_path / "t.jsonl")
    argv = SEARCH_ARGV + ["--range-shards", "4", "--trace", trace]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "trace with" in out and trace in out

    data = read_trace(trace)
    assert data.meta == {"command": "search"}
    (root,) = data.spans
    assert root.name == "plan.execute"
    tasks = [s for s in root.children if s.name.startswith("task:")]
    assert len(tasks) == 4
    assert data.metrics.counter("search.schedules_evaluated") == 16


def test_search_metrics_flag_appends_counters(capsys):
    assert main(SEARCH_ARGV + ["--metrics"]) == 0
    out = capsys.readouterr().out
    assert "counters:" in out
    assert "search.schedules_evaluated" in out


def test_trace_subcommand_renders_tree(tmp_path, capsys):
    trace = str(tmp_path / "t.jsonl")
    assert main(SEARCH_ARGV + ["--trace", trace]) == 0
    capsys.readouterr()
    assert main(["trace", trace]) == 0
    out = capsys.readouterr().out
    assert out.startswith("trace v2  command=search")
    assert "search.exhaustive" in out
    assert "|#" in out  # duration bars


def test_trace_subcommand_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    from repro.obs import TraceSchemaError

    with pytest.raises(TraceSchemaError):
        main(["trace", str(bad)])


def test_advise_smoke_metrics_include_recommend_histogram(tmp_path, capsys):
    argv = [
        "advise",
        "--smoke",
        "--store",
        str(tmp_path / "store"),
        "--metrics",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "advisor.recommendations" in out
    assert "advisor.recommend_s" in out


def test_verbose_flag_routes_diagnostics_to_stderr(capsys):
    assert main(["-v"] + SEARCH_ARGV + ["--range-shards", "2"]) == 0
    captured = capsys.readouterr()
    assert "search.range_sharded" in captured.err
    assert "search.range_sharded" not in captured.out


def test_quiet_by_default_no_stderr_diagnostics(capsys):
    assert main(SEARCH_ARGV + ["--range-shards", "2"]) == 0
    captured = capsys.readouterr()
    assert "search.range_sharded" not in captured.err


def test_search_cache_counters_cold_then_warm(tmp_path, capsys):
    cache = str(tmp_path / "c.sqlite")
    argv = SEARCH_ARGV + ["--cache", cache, "--metrics"]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "cache.misses" in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "cache.hits" in warm


def test_suite_json_reports_cache_metrics(tmp_path, capsys):
    cache = str(tmp_path / "cache.sqlite")
    argv = ["suite", "smoke", "--cache", cache, "--json", "-"]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{") :])
    assert payload["metrics"]["cache"]["hits"] > 0


# -- --telemetry + trace --analyze --json + --export-perfetto ----------
def _telemetry_archive(tmp_path, capsys):
    archive = str(tmp_path / "archive")
    argv = SEARCH_ARGV + [
        "--range-shards",
        "2",
        "--shard-workers",
        "2",
        "--archive",
        archive,
        "--telemetry",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "telemetry:" in out and "resource samples" in out
    return archive


def test_telemetry_flag_archives_resource_samples(tmp_path, capsys):
    archive = _telemetry_archive(tmp_path, capsys)
    assert main(["trace", archive, "--analyze"]) == 0
    out = capsys.readouterr().out
    assert "resources by span path" in out
    assert "worker utilization (plan.execute window)" in out


def test_trace_analyze_json_reports_worker_resources(tmp_path, capsys):
    archive = _telemetry_archive(tmp_path, capsys)
    assert main(["trace", archive, "--analyze", "--json", "-"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["n_samples"] > 0
    # Acceptance: task spans that ran in worker pids report nonzero RSS.
    task_rows = [
        r for r in payload["resources"] if "/task:" in r["path"]
    ]
    assert task_rows
    assert all(r["rss_max_bytes"] > 0 for r in task_rows)
    assert len(payload["workers"]) == 2
    assert all(w["rss_max_bytes"] > 0 for w in payload["workers"])


def test_trace_analyze_json_to_file(tmp_path, capsys):
    archive = _telemetry_archive(tmp_path, capsys)
    out_json = str(tmp_path / "analysis.json")
    assert main(["trace", archive, "--analyze", "--json", out_json]) == 0
    out = capsys.readouterr().out
    assert f"analysis JSON written to {out_json}" in out
    assert "span paths by total wall" in out  # tables still render
    assert json.load(open(out_json))["n_spans"] > 0


def test_trace_export_perfetto_passes_schema_check(tmp_path, capsys):
    from repro.obs import check_perfetto

    archive = _telemetry_archive(tmp_path, capsys)
    out_json = str(tmp_path / "perfetto.json")
    assert main(["trace", archive, "--export-perfetto", out_json]) == 0
    out = capsys.readouterr().out
    assert "perfetto trace with" in out and "ui.perfetto.dev" in out
    obj = json.load(open(out_json))
    assert check_perfetto(obj) == []
    pids = {e["pid"] for e in obj["traceEvents"]}
    assert len(pids) >= 3  # parent + two shard workers


# -- repro obs history --------------------------------------------------
def _seed_history(tmp_path, walls):
    from repro.obs import HistoryStore

    store_dir = str(tmp_path / "hist")
    store = HistoryStore(store_dir)
    for i, wall in enumerate(walls):
        store.ingest_analysis(
            {"paths": [{"path": "plan.execute", "total_s": wall}]},
            ts=float(i),
            run_id=f"run-{i}",
        )
    return store_dir


def test_obs_history_ingest_show_roundtrip(tmp_path, capsys):
    archive = _telemetry_archive(tmp_path, capsys)
    store = str(tmp_path / "hist")
    assert main(["obs", "history", "ingest", store, archive]) == 0
    out = capsys.readouterr().out
    assert f"ingested {archive}:" in out
    assert "runs total" in out
    # Re-ingesting the same archive is idempotent.
    assert main(["obs", "history", "ingest", store, archive]) == 0
    assert "+0 points" in capsys.readouterr().out
    assert main(["obs", "history", "show", store, "--series", "span:"]) == 0
    out = capsys.readouterr().out
    assert "span:plan.execute" in out


def test_obs_history_ingest_rejects_non_archive_dir(tmp_path):
    store = str(tmp_path / "hist")
    plain = tmp_path / "plain"
    plain.mkdir()
    with pytest.raises(SystemExit, match="not an archive root"):
        main(["obs", "history", "ingest", store, str(plain)])


def test_obs_history_gate_fails_naming_regressed_path(tmp_path, capsys):
    store = _seed_history(
        tmp_path, [1.0, 1.02, 0.98, 1.01, 0.99, 2.0]
    )
    with pytest.raises(SystemExit) as err:
        main(["obs", "history", "gate", store])
    assert "history gate failed" in str(err.value)
    assert "span:plan.execute" in str(err.value)
    out = capsys.readouterr().out
    assert "2x" in out or "2.0" in out  # report shows the regression


def test_obs_history_gate_passes_without_regression(tmp_path, capsys):
    store = _seed_history(
        tmp_path, [1.0, 1.02, 0.98, 1.01, 0.99, 1.01]
    )
    assert main(["obs", "history", "gate", store]) == 0
    out = capsys.readouterr().out
    assert "history gate: OK" in out and "warn-only" in out
