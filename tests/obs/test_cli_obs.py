"""CLI surface: --trace/--metrics flags, the trace subcommand, -v/-q."""

import json
import sys

import pytest

from repro.cli import main
from repro.obs import configure_logging, read_trace


@pytest.fixture(autouse=True)
def _restore_logging():
    # main() installs a stderr handler bound to capsys's capture stream;
    # rebind to the real stderr (at the default WARNING level) afterwards
    # so later tests never log into a torn-down capture object.
    yield
    configure_logging(stream=sys.stderr)


SEARCH_ARGV = [
    "search",
    "--family",
    "wavefront",
    "--param",
    "width=2",
    "--param",
    "height=2",
]


def test_search_trace_flag_writes_valid_jsonl(tmp_path, capsys):
    trace = str(tmp_path / "t.jsonl")
    argv = SEARCH_ARGV + ["--range-shards", "4", "--trace", trace]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "trace with" in out and trace in out

    data = read_trace(trace)
    assert data.meta == {"command": "search"}
    (root,) = data.spans
    assert root.name == "plan.execute"
    tasks = [s for s in root.children if s.name.startswith("task:")]
    assert len(tasks) == 4
    assert data.metrics.counter("search.schedules_evaluated") == 16


def test_search_metrics_flag_appends_counters(capsys):
    assert main(SEARCH_ARGV + ["--metrics"]) == 0
    out = capsys.readouterr().out
    assert "counters:" in out
    assert "search.schedules_evaluated" in out


def test_trace_subcommand_renders_tree(tmp_path, capsys):
    trace = str(tmp_path / "t.jsonl")
    assert main(SEARCH_ARGV + ["--trace", trace]) == 0
    capsys.readouterr()
    assert main(["trace", trace]) == 0
    out = capsys.readouterr().out
    assert out.startswith("trace v1  command=search")
    assert "search.exhaustive" in out
    assert "|#" in out  # duration bars


def test_trace_subcommand_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    from repro.obs import TraceSchemaError

    with pytest.raises(TraceSchemaError):
        main(["trace", str(bad)])


def test_advise_smoke_metrics_include_recommend_histogram(tmp_path, capsys):
    argv = [
        "advise",
        "--smoke",
        "--store",
        str(tmp_path / "store"),
        "--metrics",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "advisor.recommendations" in out
    assert "advisor.recommend_s" in out


def test_verbose_flag_routes_diagnostics_to_stderr(capsys):
    assert main(["-v"] + SEARCH_ARGV + ["--range-shards", "2"]) == 0
    captured = capsys.readouterr()
    assert "search.range_sharded" in captured.err
    assert "search.range_sharded" not in captured.out


def test_quiet_by_default_no_stderr_diagnostics(capsys):
    assert main(SEARCH_ARGV + ["--range-shards", "2"]) == 0
    captured = capsys.readouterr()
    assert "search.range_sharded" not in captured.err


def test_search_cache_counters_cold_then_warm(tmp_path, capsys):
    cache = str(tmp_path / "c.sqlite")
    argv = SEARCH_ARGV + ["--cache", cache, "--metrics"]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "cache.misses" in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "cache.hits" in warm


def test_suite_json_reports_cache_metrics(tmp_path, capsys):
    cache = str(tmp_path / "cache.sqlite")
    argv = ["suite", "smoke", "--cache", cache, "--json", "-"]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{") :])
    assert payload["metrics"]["cache"]["hits"] > 0
