"""Bounded histogram reservoirs: cap, determinism, quantile stability."""

from repro.obs import RESERVOIR_CAP, MetricsRegistry, summarize_histogram
from repro.obs.metrics import _Reservoir


def test_reservoir_caps_retained_samples():
    registry = MetricsRegistry()
    n = RESERVOIR_CAP + 10_000
    for i in range(n):
        registry.observe("lat", float(i))
    values = registry.snapshot().histograms["lat"]
    assert len(values) == RESERVOIR_CAP
    reservoir = registry._histograms["lat"]
    assert reservoir.seen == n


def test_below_cap_is_plain_append_order():
    registry = MetricsRegistry()
    for v in (3.0, 1.0, 2.0):
        registry.observe("lat", v)
    assert registry.snapshot().histograms["lat"] == (3.0, 1.0, 2.0)


def test_reservoir_deterministic_across_runs():
    def run():
        registry = MetricsRegistry()
        for i in range(3 * RESERVOIR_CAP):
            registry.observe("advisor.recommend_s", i * 0.001)
        return registry.snapshot().histograms["advisor.recommend_s"]

    assert run() == run()


def test_reservoir_seeded_per_series_name():
    a, b = _Reservoir("series-a", cap=8), _Reservoir("series-b", cap=8)
    for i in range(1000):
        a.observe(float(i))
        b.observe(float(i))
    # Same stream, different names: replacement choices differ.
    assert a.values != b.values
    assert a.seen == b.seen == 1000


def test_quantiles_stable_over_uniform_stream():
    """Nearest-rank quantiles of the capped sample track the stream."""
    registry = MetricsRegistry()
    n = 5 * RESERVOIR_CAP
    for i in range(n):
        registry.observe("lat", i / n)  # uniform on [0, 1)
    summary = summarize_histogram(registry.snapshot().histograms["lat"])
    assert summary["count"] == RESERVOIR_CAP
    # Pinned values: the seed is the series name, so this exact sample
    # set — and therefore these exact quantiles — never drifts.
    assert abs(summary["p50"] - 0.5) < 0.03
    assert abs(summary["p95"] - 0.95) < 0.03
    assert abs(summary["p99"] - 0.99) < 0.03


def test_diff_prefix_semantics_below_cap():
    registry = MetricsRegistry()
    registry.observe("lat", 1.0)
    before = registry.snapshot()
    registry.observe("lat", 2.0)
    delta = registry.snapshot().diff(before)
    assert delta.histograms["lat"] == (2.0,)


def test_diff_falls_back_to_full_series_past_cap():
    registry = MetricsRegistry()
    for i in range(RESERVOIR_CAP):
        registry.observe("lat", float(i))
    before = registry.snapshot()
    # Push replacements: the retained list is no longer append-only, so
    # positional tails would be meaningless — diff keeps the full series.
    for i in range(RESERVOIR_CAP):
        registry.observe("lat", float(-i))
    after = registry.snapshot()
    assert tuple(after.histograms["lat"][: RESERVOIR_CAP]) != tuple(
        before.histograms["lat"]
    )
    delta = after.diff(before)
    assert delta.histograms["lat"] == after.histograms["lat"]


def test_merge_snapshot_feeds_reservoir():
    from repro.obs import MetricsSnapshot

    registry = MetricsRegistry()
    registry.merge_snapshot(
        MetricsSnapshot(histograms={"lat": tuple(float(i) for i in range(10))})
    )
    assert len(registry.snapshot().histograms["lat"]) == 10
    # Merging more than the cap still stays bounded.
    registry.merge_snapshot(
        MetricsSnapshot(
            histograms={
                "lat": tuple(float(i) for i in range(2 * RESERVOIR_CAP))
            }
        )
    )
    assert len(registry.snapshot().histograms["lat"]) == RESERVOIR_CAP
