"""Heartbeats + ProgressMeter + progress_scope wiring."""

import io
import json
import os

from repro import obs
from repro.obs import (
    HeartbeatWriter,
    MetricsRegistry,
    ProgressMeter,
    read_heartbeats,
)
from repro.obs.progress import heartbeat_filename


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def _registry(**counters):
    registry = MetricsRegistry()
    for name, value in counters.items():
        registry.add(name, value)
    return registry


# -- HeartbeatWriter ---------------------------------------------------
def test_heartbeat_writer_atomic_payload(tmp_path):
    path = str(tmp_path / heartbeat_filename(0))
    writer = HeartbeatWriter(path, clock=FakeClock())
    writer.flush(_registry(**{"space.schedules_enumerated": 5}))

    with open(path) as fh:
        payload = json.load(fh)
    assert payload["pid"] == os.getpid()
    assert payload["counters"] == {"space.schedules_enumerated": 5}
    assert not [n for n in os.listdir(tmp_path) if ".tmp." in n]


def test_heartbeat_writer_throttles_ticks(tmp_path):
    clock = FakeClock()
    path = str(tmp_path / heartbeat_filename(0))
    writer = HeartbeatWriter(path, interval=0.5, clock=clock)
    writer.tick(_registry(n=1))  # first tick always writes
    writer.tick(_registry(n=2))  # within the interval: suppressed
    assert json.load(open(path))["counters"] == {"n": 1}
    clock.t = 0.6
    writer.tick(_registry(n=3))
    assert json.load(open(path))["counters"] == {"n": 3}


def test_heartbeat_writer_tolerates_unwritable_path(tmp_path):
    writer = HeartbeatWriter(str(tmp_path / "no-such-dir" / "t.json"))
    writer.flush(_registry(n=1))  # must not raise


def test_read_heartbeats_sums_and_tolerates_garbage(tmp_path):
    for i, n in enumerate((3, 4)):
        HeartbeatWriter(
            str(tmp_path / heartbeat_filename(i)), clock=FakeClock()
        ).flush(_registry(**{"space.schedules_enumerated": n}))
    (tmp_path / heartbeat_filename(9)).write_text('{"cou')  # torn write
    (tmp_path / "unrelated.txt").write_text("ignored")
    (tmp_path / heartbeat_filename(8)).write_text('{"counters": [1]}')

    totals = read_heartbeats(str(tmp_path))
    assert totals == {"space.schedules_enumerated": 7}
    assert read_heartbeats(str(tmp_path / "missing")) == {}


# -- ProgressMeter -----------------------------------------------------
def test_meter_line_has_pct_counts_and_eta():
    clock = FakeClock()
    stream = io.StringIO()
    meter = ProgressMeter(
        100, label="search", counters=("n",), stream=stream,
        interval=0.5, clock=clock,
    )
    registry = _registry(n=25)
    clock.t = 1.0
    meter.tick(registry)
    line = stream.getvalue().strip()
    assert line.startswith("search:")
    assert "25.0%" in line and "(25/100)" in line
    # 25 done in 1s -> 75 left at 25/s = 3s.
    assert "eta 3s" in line


def test_meter_monotone_against_racy_heartbeat_reads(tmp_path):
    clock = FakeClock()
    stream = io.StringIO()
    meter = ProgressMeter(
        10, counters=("n",), stream=stream, interval=0.0,
        heartbeat_dir=str(tmp_path), clock=clock,
    )
    registry = MetricsRegistry()
    HeartbeatWriter(
        str(tmp_path / heartbeat_filename(0)), clock=clock
    ).flush(_registry(n=6))
    assert meter.current_done(registry) == 6
    # Heartbeat vanishes (task completed, file deleted) before the
    # registry absorbs: done must not walk backwards.
    os.unlink(tmp_path / heartbeat_filename(0))
    assert meter.current_done(registry) == 6
    registry.add("n", 6)  # parent absorbs the worker snapshot
    assert meter.current_done(registry) == 6


def test_meter_finish_uses_registry_only(tmp_path):
    clock = FakeClock()
    stream = io.StringIO()
    meter = ProgressMeter(
        8, label="s", counters=("n",), stream=stream, interval=0.0,
        heartbeat_dir=str(tmp_path), clock=clock,
    )
    # Stale heartbeat from an already-absorbed task must not double the
    # final count: finish() reads the registry alone.
    HeartbeatWriter(
        str(tmp_path / heartbeat_filename(0)), clock=clock
    ).flush(_registry(n=8))
    registry = _registry(n=8)
    done = meter.finish(registry)
    assert done == 8
    final = stream.getvalue().strip().splitlines()[-1]
    assert "100.0%" in final and "(8/8)" in final and "done" in final


def test_meter_baseline_excludes_preexisting_counts():
    registry = _registry(n=40)
    meter = ProgressMeter(
        10, counters=("n",), stream=io.StringIO(), interval=0.0,
        baseline=registry.snapshot(), clock=FakeClock(),
    )
    registry.add("n", 3)
    assert meter.current_done(registry) == 3


def test_meter_throttles_and_caps_at_100():
    clock = FakeClock()
    stream = io.StringIO()
    meter = ProgressMeter(
        4, counters=("n",), stream=stream, interval=0.5, clock=clock
    )
    registry = MetricsRegistry()
    for _ in range(8):  # overshoot the total; same clock instant
        registry.add("n", 1)
        meter.tick(registry)
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == 1  # throttle: one line per interval
    clock.t = 1.0
    meter.tick(registry)
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == 2
    assert "100.0%" in lines[-1]  # frac capped even at 8/4


# -- progress_scope (ambient wiring) -----------------------------------
def test_progress_scope_installs_ticker_and_counts_adds():
    stream = io.StringIO()
    assert not obs.progress_enabled()
    with obs.progress_scope(
        5, label="sweep", counters=("n",), stream=stream, interval=0.0
    ) as scope:
        assert obs.progress_enabled()
        assert obs.progress_active() is scope
        assert obs.progress_poll_interval() == 0.0
        hb = obs.progress_heartbeat_path(3)
        assert hb is not None and hb.endswith(heartbeat_filename(3))
        for _ in range(5):
            obs.add("n")
        obs.progress_poll()
    assert scope.done == 5
    assert not obs.progress_enabled()
    assert obs.progress_heartbeat_path(0) is None
    assert "100.0%" in stream.getvalue()
    # The heartbeat dir is cleaned up on exit.
    assert scope.heartbeat_dir is None


def test_progress_scope_disabled_is_inert():
    with obs.progress_scope(5, enabled=False) as scope:
        assert not obs.progress_enabled()
        assert scope.heartbeat_path(0) is None
        obs.add("n", 5)
    assert scope.done == 0


def test_worker_capture_overrides_parent_meter(tmp_path):
    hb = str(tmp_path / heartbeat_filename(0))
    stream = io.StringIO()
    with obs.progress_scope(4, counters=("n",), stream=stream, interval=0.0):
        # A same-process "worker" (in-process executor) must tick its
        # heartbeat, not the parent's meter.
        with obs.worker_capture(heartbeat=hb) as cap:
            assert not obs.progress_active()
            obs.add("n", 2)
        assert json.load(open(hb))["counters"] == {"n": 2}
        assert cap.snapshot.counter("n") == 2
        obs.absorb(snapshot=cap.snapshot)
    # finish() sees the absorbed counters in the parent registry.
    assert "(2/4)" in stream.getvalue().splitlines()[-1]


def test_worker_capture_without_heartbeat_silences_ticker():
    with obs.progress_scope(4, counters=("n",), stream=io.StringIO()):
        with obs.worker_capture():
            assert not obs.progress_enabled()
            obs.add("n")
        assert obs.progress_enabled()
