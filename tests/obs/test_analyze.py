"""Trace analytics: aggregation, hotspots, critical path, rendering."""

from repro.obs import (
    SpanRecord,
    TraceData,
    aggregate_spans,
    critical_path,
    hotspots,
    render_analysis,
)


def _span(name, duration, children=(), start=0.0, pid=1):
    return SpanRecord(
        name=name,
        start=start,
        duration=duration,
        pid=pid,
        attrs={},
        children=list(children),
    )


def _sharded_forest():
    """plan.execute with two parallel tasks (children sum past parent)."""
    t0 = _span(
        "task:a",
        0.6,
        [_span("stage:search", 0.5, [_span("eval.batch", 0.4)])],
    )
    t1 = _span(
        "task:b",
        0.8,
        [_span("stage:search", 0.7, [_span("eval.batch", 0.65)])],
    )
    # Tasks ran concurrently: the root wall (0.9) is far below the
    # summed task walls (1.4).
    return [_span("plan.execute", 0.9, [t0, t1])]


def test_aggregate_counts_and_totals_by_path():
    stats = aggregate_spans(_sharded_forest())
    assert stats["plan.execute"].count == 1
    # Same-name siblings fold into one path entry.
    tasks_a = stats["plan.execute/task:a"]
    assert tasks_a.count == 1 and tasks_a.total == 0.6
    stages = stats["plan.execute/task:a/stage:search"]
    assert stages.total == 0.5
    assert (
        "plan.execute/task:b/stage:search/eval.batch" in stats
    )


def test_aggregate_self_time_clamped_at_zero():
    # Parallel children: 0.6 + 0.8 > 0.9, so self time clamps to 0.
    stats = aggregate_spans(_sharded_forest())
    assert stats["plan.execute"].self_total == 0.0
    # Serial nesting: self = own - children.
    a_stage = stats["plan.execute/task:a/stage:search"]
    assert abs(a_stage.self_total - 0.1) < 1e-12


def test_aggregate_max_tracks_largest_occurrence():
    forest = [
        _span("root", 1.0, [_span("leaf", 0.2), _span("leaf", 0.5)])
    ]
    stats = aggregate_spans(forest)
    leaf = stats["root/leaf"]
    assert leaf.count == 2
    assert leaf.max == 0.5
    assert abs(leaf.total - 0.7) < 1e-12


def test_hotspots_ranked_by_self_time():
    ranked = hotspots(_sharded_forest(), n=3)
    # The biggest leaf batch dominates self time.
    assert ranked[0].path == "plan.execute/task:b/stage:search/eval.batch"
    assert len(ranked) == 3
    assert all(
        ranked[i].self_total >= ranked[i + 1].self_total
        for i in range(len(ranked) - 1)
    )


def test_hotspots_ties_break_by_path():
    forest = [_span("b", 0.5), _span("a", 0.5)]
    ranked = hotspots(forest, n=2)
    assert [s.path for s in ranked] == ["a", "b"]


def test_critical_path_descends_max_child_not_sum():
    steps = critical_path(_sharded_forest())
    # The chain follows task:b (the longer parallel sibling) even though
    # summing children would make either branch look similar.
    assert [s.name for s in steps] == [
        "plan.execute",
        "task:b",
        "stage:search",
        "eval.batch",
    ]
    assert steps[1].n_siblings == 1
    assert steps[0].fraction == 1.0
    assert abs(steps[3].fraction - 0.65 / 0.9) < 1e-12


def test_critical_path_empty_forest():
    assert critical_path([]) == []


def test_critical_path_picks_longest_root():
    steps = critical_path([_span("small", 0.1), _span("big", 0.2)])
    assert steps[0].name == "big"
    assert steps[0].n_siblings == 1


def test_render_analysis_sections_and_counts():
    data = TraceData(spans=tuple(_sharded_forest()))
    out = render_analysis(data, top=5)
    assert out.startswith("trace analysis: 7 spans, 7 distinct span paths")
    assert "span paths by total wall" in out
    assert "hotspots by self wall" in out
    assert "critical path (longest concurrent-aware chain)" in out
    assert "plan.execute/task:b/stage:search/eval.batch" in out


def test_render_analysis_empty_trace():
    out = render_analysis(TraceData())
    assert out == "trace analysis: 0 spans, 0 distinct span paths"
