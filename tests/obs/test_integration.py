"""End-to-end telemetry: sharded runs merge into one coherent story.

The bit-stability contract: counters count *deterministic* events, and
the worker-capture/absorb protocol merges them exactly like task
payloads — so a range-sharded sweep produces the same counter digest as
the serial one, and a traced sharded run yields one tree covering every
shard task.
"""

import pytest

from repro import obs
from repro.obs import walk_spans
from repro.orchestrate import run_range_sharded_search
from repro.platform.presets import noiseless, perlmutter_like
from repro.sim.measure import MeasurementConfig
from repro.workloads import WorkloadSpec, run_suite

SPEC = WorkloadSpec("wavefront", {"width": 2, "height": 2})
MEASUREMENT = MeasurementConfig(max_samples=1)


@pytest.fixture(scope="module")
def machine():
    return noiseless(perlmutter_like())


def _sweep_delta(machine, shard_workers):
    before = obs.metrics_snapshot()
    sharded = run_range_sharded_search(
        SPEC,
        machine=machine,
        n_shards=3,
        measurement=MEASUREMENT,
        shard_workers=shard_workers,
    )
    return sharded, obs.metrics_snapshot().diff(before)


class TestCrossProcessMetrics:
    def test_sharded_digest_matches_in_process(self, machine):
        serial, serial_delta = _sweep_delta(machine, shard_workers=0)
        sharded, sharded_delta = _sweep_delta(machine, shard_workers=2)
        assert serial.result.n_iterations == sharded.result.n_iterations
        assert serial_delta.counters == sharded_delta.counters
        assert serial_delta.digest() == sharded_delta.digest()
        # The totals account for every schedule in the space exactly once.
        assert serial_delta.counter("search.schedules_evaluated") == serial.total
        assert serial_delta.counter("space.schedules_enumerated") == serial.total

    def test_suite_report_carries_cache_metrics(self, machine, tmp_path):
        cache = str(tmp_path / "cache.sqlite")
        cold = run_suite("smoke", machine=machine, cache_path=cache)
        assert cold.metrics["cache"]["misses"] > 0
        assert cold.metrics["cache"]["hits"] == 0
        warm = run_suite("smoke", machine=machine, cache_path=cache)
        assert warm.metrics["cache"]["hits"] > 0
        assert "metrics" in cold.to_dict()
        assert "cache" in warm.ascii_table()


class TestCrossProcessTrace:
    def test_sharded_trace_covers_every_shard_task(self, machine):
        with obs.capture(trace=True) as cap:
            sharded = run_range_sharded_search(
                SPEC,
                machine=machine,
                n_shards=3,
                measurement=MEASUREMENT,
                shard_workers=2,
            )
        (root,) = cap.spans
        assert root.name == "plan.execute"
        tasks = [s for s in root.children if s.name.startswith("task:")]
        assert len(tasks) == len(sharded.ranges)
        assert sorted(t.attrs["index"] for t in tasks) == list(
            range(len(sharded.ranges))
        )
        # Worker spans keep their own pids — none came from this process.
        assert all(t.pid != root.pid for t in tasks)
        # Each task span contains the search it ran.
        for task in tasks:
            assert task.find("search.exhaustive") is not None
        # Metrics shipped alongside: the capture saw the full counts.
        assert cap.metrics.counter("search.schedules_evaluated") == sharded.total

    def test_in_process_trace_has_same_shape(self, machine):
        with obs.capture(trace=True) as cap:
            sharded = run_range_sharded_search(
                SPEC,
                machine=machine,
                n_shards=3,
                measurement=MEASUREMENT,
                shard_workers=0,
            )
        (root,) = cap.spans
        tasks = [s for s in root.children if s.name.startswith("task:")]
        assert len(tasks) == len(sharded.ranges)
        names = {s.name for s in walk_spans(cap.spans)}
        assert {"plan.execute", "stage:search", "search.exhaustive"} <= names
