"""TelemetrySampler: proc reading, throttling, absorb, capture gauges."""

import os

import pytest

from repro import obs
from repro.obs import ResourceSample, TelemetrySampler, sample_now
from repro.obs.telemetry import (
    MALLOC_ENV,
    _read_proc_self,
    malloc_tracking_enabled,
    read_resources,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def _sample(ts, pid, path, rss=1, cpu=0.0):
    return ResourceSample(
        ts=ts,
        pid=pid,
        path=path,
        rss_bytes=rss,
        cpu_utime_s=cpu,
        cpu_stime_s=0.0,
        gc_collections=0,
    )


# -- raw readers -------------------------------------------------------
def test_read_resources_returns_positive_values():
    rss, utime, stime = read_resources()
    assert rss > 0
    assert utime >= 0.0 and stime >= 0.0


@pytest.mark.skipif(
    not os.path.exists("/proc/self/stat"), reason="needs Linux procfs"
)
def test_proc_self_reader_parses_stat_and_statm():
    values = _read_proc_self()
    assert values is not None
    rss, utime, stime = values
    # RSS is a whole number of pages and at least one page.
    assert rss >= os.sysconf("SC_PAGE_SIZE")
    assert rss % os.sysconf("SC_PAGE_SIZE") == 0
    assert utime >= 0.0 and stime >= 0.0


def test_sample_now_tags_path_and_pid():
    rec = sample_now("a/b", ts=1.5)
    assert rec.path == "a/b"
    assert rec.ts == 1.5
    assert rec.pid == os.getpid()
    assert rec.rss_bytes > 0
    assert rec.cpu_s == rec.cpu_utime_s + rec.cpu_stime_s
    assert rec.malloc_peak_bytes is None


def test_malloc_flag_parses_env(monkeypatch):
    monkeypatch.delenv(MALLOC_ENV, raising=False)
    assert not malloc_tracking_enabled()
    monkeypatch.setenv(MALLOC_ENV, "0")
    assert not malloc_tracking_enabled()
    monkeypatch.setenv(MALLOC_ENV, "1")
    assert malloc_tracking_enabled()


def test_malloc_sampler_records_tracemalloc_peak():
    import tracemalloc

    sampler = TelemetrySampler(malloc=True, clock=FakeClock())
    try:
        assert tracemalloc.is_tracing()
        blob = [0] * 50_000
        rec = sampler.sample("alloc")
        assert rec.malloc_peak_bytes is not None
        assert rec.malloc_peak_bytes > 0
        del blob
    finally:
        sampler.stop()
    assert not tracemalloc.is_tracing()


# -- throttling --------------------------------------------------------
def test_maybe_sample_throttles_inside_interval():
    clock = FakeClock()
    sampler = TelemetrySampler(interval=0.05, clock=clock)
    assert sampler.maybe_sample("p") is not None
    assert sampler.maybe_sample("p") is None  # same instant: suppressed
    clock.t = 0.06
    assert sampler.maybe_sample("p") is not None
    assert len(sampler.samples) == 2


def test_forced_sample_resets_throttle():
    clock = FakeClock()
    sampler = TelemetrySampler(interval=0.05, clock=clock)
    sampler.sample("boundary")
    assert not sampler.due()
    clock.t = 0.06
    assert sampler.due()


def test_sample_ts_relative_to_epoch():
    clock = FakeClock(100.0)
    sampler = TelemetrySampler(epoch=90.0, clock=clock)
    rec = sampler.sample("p")
    assert rec.ts == pytest.approx(10.0)


# -- absorb ------------------------------------------------------------
def test_absorb_rebases_ts_and_grafts_prefix():
    sampler = TelemetrySampler(epoch=0.0, clock=FakeClock())
    shipped = [_sample(1.0, 999, "stage:eval"), _sample(2.0, 999, "")]
    sampler.absorb(shipped, shift=5.0, prefix="plan.execute/task:x")
    a, b = sampler.samples
    assert a.ts == pytest.approx(6.0)
    assert a.path == "plan.execute/task:x/stage:eval"
    # Pathless worker samples land on the graft point itself.
    assert b.path == "plan.execute/task:x"
    assert b.ts == pytest.approx(7.0)


def test_absorb_without_prefix_keeps_paths():
    sampler = TelemetrySampler(epoch=0.0, clock=FakeClock())
    sampler.absorb([_sample(1.0, 7, "w")])
    assert sampler.samples[0].path == "w"


def test_summary_rolls_up_own_cpu_and_global_rss_peak():
    sampler = TelemetrySampler(epoch=0.0, clock=FakeClock())
    pid = os.getpid()
    sampler.samples = [
        _sample(0.0, pid, "a", rss=100, cpu=1.0),
        _sample(1.0, pid, "a", rss=200, cpu=1.5),
        _sample(0.5, 999, "w", rss=5000, cpu=9.0),  # worker peak wins
    ]
    summary = sampler.summary()
    assert summary["rss_max_bytes"] == 5000.0
    assert summary["cpu_s"] == pytest.approx(0.5)


# -- ambient wiring ----------------------------------------------------
def test_capture_telemetry_collects_samples_and_gauges():
    with obs.capture(trace=True, telemetry=True) as cap:
        assert obs.telemetry_active()
        with obs.stage("work"):
            pass
    assert not obs.telemetry_active()
    assert len(cap.resources) >= 2  # baseline + boundary samples
    assert any(s.path == "stage:work" for s in cap.resources)
    assert cap.metrics.gauges["telemetry.rss_max_bytes"] > 0
    assert cap.metrics.gauges["telemetry.cpu_s"] >= 0.0


def test_capture_without_telemetry_has_no_samples():
    with obs.capture() as cap:
        assert not obs.telemetry_active()
        with obs.stage("work"):
            pass
    assert cap.resources == ()
    assert "telemetry.rss_max_bytes" not in cap.metrics.gauges


def test_worker_capture_ships_samples_and_epoch_home():
    with obs.capture(trace=True, telemetry=True) as cap:
        with obs.span("plan.execute"):
            with obs.worker_capture(trace=True, telemetry=True) as wcap:
                with obs.task_scope("task:w[i]"):
                    pass
            assert wcap.resources
            assert wcap.epoch is not None
            obs.absorb(
                wcap.spans,
                wcap.snapshot,
                resources=wcap.resources,
                epoch=wcap.epoch,
            )
    # Worker samples were grafted under the open span path.
    grafted = [
        s for s in cap.resources if s.path.startswith("plan.execute/")
    ]
    assert any("task:w[i]" in s.path for s in grafted)


def test_telemetry_counters_stay_bit_identical():
    """Telemetry must only write gauges, never counters."""
    with obs.capture() as plain:
        obs.add("n", 3)
    obs.reset()
    with obs.capture(telemetry=True) as telem:
        obs.add("n", 3)
    assert plain.metrics.counters == telem.metrics.counters
