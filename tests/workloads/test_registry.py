"""Tests for the workload spec + registry layer."""

import pytest

from repro.dag.program import Program
from repro.errors import WorkloadError
from repro.workloads import (
    WorkloadSpec,
    build_workload,
    get_family,
    list_families,
    workload,
)
from repro.workloads.spec import _REGISTRY


EXPECTED_FAMILIES = {
    "spmv",
    "halo3d",
    "layered_random",
    "fork_join",
    "tree_allreduce",
    "wavefront",
    "stencil_reduce",
}


class TestSpec:
    def test_params_normalized_to_sorted_tuple(self):
        a = WorkloadSpec("spmv", {"b": 1, "a": 2})
        b = WorkloadSpec("spmv", {"a": 2, "b": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a.params == (("a", 2), ("b", 1))

    def test_label_stable_and_parameterized(self):
        s = WorkloadSpec("wavefront", {"width": 2}, seed=7)
        assert s.label == "wavefront[width=2,seed=7]"
        assert WorkloadSpec("wavefront").label == "wavefront[seed=0]"

    def test_with_params_and_seed(self):
        s = WorkloadSpec("wavefront", {"width": 2})
        assert s.with_params(height=3).param_dict == {"width": 2, "height": 3}
        assert s.with_seed(5).seed == 5
        assert s.seed == 0  # original untouched

    def test_dataclasses_replace_round_trips(self):
        import dataclasses

        s = WorkloadSpec("layered_random", {"layers": 3}, seed=0)
        r = dataclasses.replace(s, seed=1)
        assert r == s.with_seed(1)
        assert r.param_dict == {"layers": 3}


class TestRegistry:
    def test_builtin_families_registered(self):
        names = {f.name for f in list_families()}
        assert EXPECTED_FAMILIES <= names

    def test_families_sorted_and_described(self):
        families = list_families()
        assert [f.name for f in families] == sorted(f.name for f in families)
        assert all(f.description for f in families)

    def test_get_family_unknown_raises(self):
        with pytest.raises(WorkloadError, match="unknown workload family"):
            get_family("no-such-family")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(WorkloadError, match="already registered"):
            workload("spmv")(lambda spec: None)

    def test_default_spec_builds(self):
        fam = get_family("wavefront")
        program = build_workload(fam.default_spec())
        assert isinstance(program, Program)

    def test_reimport_does_not_reregister(self):
        before = set(_REGISTRY)
        import repro.workloads.adapters  # noqa: F401
        import repro.workloads.synthetic  # noqa: F401

        assert set(_REGISTRY) == before


class TestBuild:
    def test_build_every_family_default(self):
        for fam in list_families():
            spec = fam.default_spec()
            if fam.name == "spmv":
                spec = spec.with_params(scale=0.01)
            if fam.name == "halo3d":
                spec = spec.with_params(nx=16, ny=16, nz=16)
            program = build_workload(spec)
            assert isinstance(program, Program)
            program.graph.validate()

    def test_unknown_parameter_rejected(self):
        with pytest.raises(WorkloadError, match="unknown parameters"):
            build_workload(WorkloadSpec("wavefront", {"wdith": 2}))

    def test_unknown_family_rejected(self):
        with pytest.raises(WorkloadError, match="unknown workload family"):
            build_workload(WorkloadSpec("nope"))

    def test_invalid_parameter_value_rejected(self):
        with pytest.raises(WorkloadError, match="must be >= 1"):
            build_workload(WorkloadSpec("wavefront", {"width": 0}))

    def test_non_integral_parameter_rejected(self):
        with pytest.raises(WorkloadError, match="must be an integer"):
            build_workload(WorkloadSpec("layered_random", {"layers": 2.9}))
