"""Tests for cross-workload rule generalization."""

import pytest

from repro.platform.presets import perlmutter_like
from repro.sim.measure import MeasurementConfig
from repro.workloads import WorkloadSpec, run_cross_workload
from repro.workloads.generalization import workload_rules

#: Tiny exhaustible spaces (40 and 72 schedules respectively).
SPECS = [
    WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
    WorkloadSpec("tree_allreduce", {"rounds": 1, "elems": 16384}),
]

MEASUREMENT = MeasurementConfig(max_samples=1)


@pytest.fixture(scope="module")
def cross_result():
    return run_cross_workload(SPECS, measurement=MEASUREMENT)


class TestWorkloadRules:
    def test_pipeline_reduction(self):
        wr = workload_rules(SPECS[0], perlmutter_like(), measurement=MEASUREMENT)
        assert wr.spec == SPECS[0]
        assert wr.fast_schedules  # fastest class is never empty
        # every fast schedule was labeled class 0
        labels = wr.result.labeling.labels
        assert (labels == 0).sum() == len(wr.fast_schedules)


class TestCrossWorkload:
    def test_matrix_covers_all_ordered_pairs(self, cross_result):
        labels = [w.spec.label for w in cross_result.workloads]
        expected = {
            (a, b) for a in labels for b in labels if a != b
        }
        assert set(cross_result.matrix) == expected

    def test_summary_shapes(self, cross_result):
        for n_rules, n_transferable, sat in cross_result.matrix.values():
            assert n_rules >= 0
            assert 0 <= n_transferable <= n_rules
            assert 0.0 <= sat <= 1.0

    def test_rows_json_ready(self, cross_result):
        rows = cross_result.rows()
        assert len(rows) == len(cross_result.matrix)
        for row in rows:
            assert {
                "source",
                "target",
                "n_rules",
                "n_transferable",
                "mean_satisfaction",
            } <= set(row)

    def test_report_mentions_every_pair(self, cross_result):
        text = cross_result.report()
        for (src, dst) in cross_result.matrix:
            assert f"{src} -> {dst}" in text

    def test_needs_two_workloads(self):
        with pytest.raises(ValueError, match="at least two"):
            run_cross_workload(SPECS[:1], measurement=MEASUREMENT)

    def test_deterministic(self, cross_result):
        again = run_cross_workload(SPECS, measurement=MEASUREMENT)
        assert again.matrix == cross_result.matrix
