"""Tests for the suite layer: definitions, runner, report, caching."""

import json

import pytest

from repro.errors import WorkloadError
from repro.platform.presets import perlmutter_like
from repro.sim.measure import MeasurementConfig
from repro.workloads import (
    Suite,
    SuiteRunner,
    WorkloadSpec,
    builtin_suites,
    get_suite,
    run_suite,
)

def _comparable(cell, *, drop=("wall_s",)):
    """Cell dict minus fields that legitimately vary between runs."""
    return {k: v for k, v in cell.to_dict().items() if k not in drop}


def _report_comparable(report):
    """Report dict minus wall-clock timing (identical for any sharding)."""
    data = report.to_dict()
    data.pop("timing")
    data["cells"] = [
        {k: v for k, v in cell.items() if k != "wall_s"}
        for cell in data["cells"]
    ]
    return data


TINY = Suite(
    name="tiny",
    description="two tiny workloads for tests",
    specs=(
        WorkloadSpec("wavefront", {"width": 2, "height": 2}),
        WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
    ),
    strategies=("random", "mcts"),
    n_iterations=4,
    measurement=MeasurementConfig(max_samples=1),
)

TINY_RULES = Suite(
    name="tiny-rules",
    description="three tiny exhaustible workloads with cross-workload rules",
    specs=(
        WorkloadSpec("wavefront", {"width": 2, "height": 2}),
        WorkloadSpec("stencil_reduce", {"width": 2, "height": 2}),
        WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
    ),
    strategies=("random",),
    n_iterations=4,
    measurement=MeasurementConfig(max_samples=1),
    cross_workload_rules=True,
)


class TestDefinitions:
    def test_builtin_suites_present(self):
        assert {"smoke", "paper", "generalization"} <= set(builtin_suites())

    def test_smoke_covers_all_seven_families(self):
        smoke = get_suite("smoke")
        families = {s.family for s in smoke.specs}
        assert families == {
            "spmv",
            "halo3d",
            "layered_random",
            "fork_join",
            "tree_allreduce",
            "wavefront",
            "stencil_reduce",
        }
        assert len(smoke.specs) >= 7

    def test_unknown_suite_rejected(self):
        with pytest.raises(WorkloadError, match="unknown suite"):
            get_suite("nope")


class TestRunner:
    def test_one_cell_per_workload_strategy_pair(self):
        report = SuiteRunner(TINY).run()
        assert len(report.cells) == len(TINY.specs) * len(TINY.strategies)
        pairs = {(c.workload, c.strategy) for c in report.cells}
        assert len(pairs) == len(report.cells)
        for cell in report.cells:
            assert cell.n_iterations == TINY.n_iterations
            assert cell.best_time > 0
            assert cell.best_time <= cell.mean_time
            assert cell.n_simulations > 0

    def test_json_report_round_trips(self):
        report = SuiteRunner(TINY).run()
        data = json.loads(report.to_json())
        assert data["suite"] == "tiny"
        assert len(data["cells"]) == len(report.cells)
        row = data["cells"][0]
        assert {"workload", "family", "strategy", "best_time_us"} <= set(row)

    def test_ascii_table_lists_every_cell(self):
        report = SuiteRunner(TINY).run()
        table = report.ascii_table()
        for cell in report.cells:
            assert cell.workload in table
        assert "best(us)" in table

    def test_deterministic_across_runs(self):
        a = SuiteRunner(TINY).run()
        b = SuiteRunner(TINY).run()
        assert [_comparable(c) for c in a.cells] == [
            _comparable(c) for c in b.cells
        ]

    def test_workers_do_not_change_results(self):
        serial = SuiteRunner(TINY).run()
        parallel = SuiteRunner(TINY, workers=2).run()
        assert [_comparable(c) for c in serial.cells] == [
            _comparable(c) for c in parallel.cells
        ]

    def test_shard_workers_do_not_change_results(self):
        """Workload-level sharding: the whole report (not just cells) is
        bit-identical to serial, excluding wall-clock timing."""
        serial = SuiteRunner(TINY).run()
        sharded = SuiteRunner(TINY, shard_workers=2).run()
        assert _report_comparable(serial) == _report_comparable(sharded)
        assert sharded.timing["shard_workers"] == 2
        assert serial.timing["shard_workers"] == 0

    def test_timing_records_per_task_stages(self):
        report = SuiteRunner(TINY).run()
        timing = report.timing
        assert timing["n_tasks"] == len(TINY.specs)
        for row in timing["tasks"]:
            assert row["kind"] == "suite-cells"
            assert "build" in row["stages"]
            for strat in TINY.strategies:
                assert f"search:{strat}" in row["stages"]

    def test_cache_hits_across_runs(self, tmp_path):
        """Same suite, same cache file ⇒ second run re-simulates nothing
        (workload fingerprints are bit-stable)."""
        cache = str(tmp_path / "suite.sqlite")
        first = SuiteRunner(TINY, cache_path=cache).run()
        second = SuiteRunner(TINY, cache_path=cache).run()
        assert sum(c.n_simulations for c in first.cells) > 0
        assert sum(c.n_simulations for c in second.cells) == 0
        drop = ("wall_s", "n_simulations")
        assert [_comparable(c, drop=drop) for c in first.cells] == [
            _comparable(c, drop=drop) for c in second.cells
        ]

    def test_save_json(self, tmp_path):
        path = tmp_path / "report.json"
        report = SuiteRunner(TINY).run()
        report.save_json(str(path))
        assert json.loads(path.read_text())["suite"] == "tiny"


class TestCrossWorkloadTables:
    @pytest.fixture(scope="class")
    def report(self):
        return SuiteRunner(TINY_RULES).run()

    def test_rules_and_transfer_tables_populated(self, report):
        n = len(TINY_RULES.specs)
        assert len(report.rules_table) == n * (n - 1)
        assert len(report.transfer_table) == n * (n - 1)
        for row in report.transfer_table:
            assert {
                "source",
                "target",
                "n_rules",
                "n_transferable",
                "mean_discrimination",
                "mean_coverage",
            } <= set(row)

    def test_union_table_rows(self, report):
        # Three workloads: leave-one-out union rows (minus any skipped
        # for lacking shared features) land in the report.
        for row in report.union_table:
            assert 0.0 <= float(row["holdout_accuracy"]) <= 1.0

    def test_tables_render_and_serialize(self, report):
        text = report.ascii_table()
        assert "Signature-matched transfer" in text
        data = json.loads(report.to_json())
        assert "transfer_table" in data
        assert "union_table" in data

    def test_sharded_cross_workload_report_identical(self, report):
        """Sharding covers the rule pipelines too: every table of the
        generalization-style report matches the serial run."""
        sharded = SuiteRunner(TINY_RULES, shard_workers=2).run()
        assert _report_comparable(sharded) == _report_comparable(report)
        kinds = {t["kind"] for t in sharded.timing["tasks"]}
        assert kinds == {"suite-cells", "workload-rules"}


@pytest.mark.slow
class TestSmokeSuite:
    def test_smoke_runs_end_to_end(self):
        report = run_suite("smoke", machine=perlmutter_like())
        smoke = get_suite("smoke")
        assert len(report.cells) == len(smoke.specs) * len(smoke.strategies)
        # >= 6 workloads through the evaluator, one row per cell
        assert len({c.workload for c in report.cells}) >= 6
