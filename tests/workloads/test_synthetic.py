"""Tests for the synthetic DAG generator families, including the
bit-stable determinism contract the measurement cache depends on."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.dag.vertex import OpKind
from repro.exec import program_fingerprint
from repro.schedule.space import DesignSpace
from repro.workloads import WorkloadSpec, build_workload

SPECS = [
    WorkloadSpec("layered_random", {"layers": 3, "width": 2, "edge_p": 0.5}),
    WorkloadSpec("fork_join", {"stages": 2, "branches": 2, "depth": 1}),
    WorkloadSpec("tree_allreduce", {"rounds": 2, "elems": 1024}),
    WorkloadSpec("wavefront", {"width": 2, "height": 3}),
    WorkloadSpec("stencil_reduce", {"width": 3, "height": 2}),
]


def _structure(program):
    """Comparable structural summary of a program."""
    vertices = sorted(
        (v.name, v.kind.value, v.duration, v.work) for v in program.graph
    )
    edges = sorted((u.name, v.name) for u, v in program.graph.edges())
    comm = {
        g: tuple(plan.messages) for g, plan in sorted(program.comm.items())
    }
    return (program.name, program.n_ranks, vertices, edges, comm)


class TestValidity:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.family)
    def test_emits_valid_program(self, spec):
        program = build_workload(spec)
        program.graph.validate()
        assert program.schedulable_vertices()
        # every program explores a non-trivial space on two streams
        space = DesignSpace(program, n_streams=2)
        assert space.count() > 1

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.family)
    def test_gpu_work_is_costed(self, spec):
        program = build_workload(spec)
        for v in program.graph.gpu_vertices():
            assert v.work is not None
            assert v.work.flops > 0 or v.work.bytes_moved > 0

    def test_tree_allreduce_ranks_and_messages(self):
        program = build_workload(
            WorkloadSpec("tree_allreduce", {"rounds": 2, "elems": 64})
        )
        assert program.n_ranks == 4
        assert set(program.comm) == {"round0", "round1"}
        for r, plan in enumerate(program.comm.values()):
            # every rank sends exactly one partial to its round partner
            assert plan.n_messages == 4
            for m in plan.messages:
                assert m.dst == m.src ^ (1 << r)

    def test_wavefront_dependency_structure(self):
        program = build_workload(
            WorkloadSpec("wavefront", {"width": 3, "height": 2})
        )
        g = program.graph
        succ = {v.name for v in g.successors("T0_0")}
        assert {"T1_0", "T0_1"} <= succ
        # all tiles are GPU ops
        assert all(
            g.vertex(f"T{i}_{j}").kind is OpKind.GPU
            for i in range(3)
            for j in range(2)
        )

    def test_fork_join_join_is_cpu(self):
        program = build_workload(
            WorkloadSpec("fork_join", {"stages": 2, "branches": 3, "depth": 2})
        )
        g = program.graph
        assert g.vertex("Join0").kind is OpKind.CPU
        preds = {v.name for v in g.predecessors("Join0")}
        assert preds == {"S0B0_1", "S0B1_1", "S0B2_1"}

    def test_layered_random_edges_respect_layers(self):
        program = build_workload(
            WorkloadSpec("layered_random", {"layers": 4, "width": 3})
        )
        for u, v in program.graph.edges():
            if u.kind is not OpKind.GPU or v.kind is not OpKind.GPU:
                continue
            lu = int(u.name[1:].split("_")[0])
            lv = int(v.name[1:].split("_")[0])
            assert lv == lu + 1


class TestDeterminism:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.family)
    def test_same_seed_identical_structure(self, spec):
        a = build_workload(spec)
        b = build_workload(spec)
        assert _structure(a) == _structure(b)
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_different_seed_changes_costs(self):
        spec = WorkloadSpec("wavefront", {"width": 2, "height": 2})
        a = build_workload(spec)
        b = build_workload(spec.with_seed(1))
        assert program_fingerprint(a) != program_fingerprint(b)

    def test_different_seed_can_change_random_structure(self):
        base = WorkloadSpec(
            "layered_random", {"layers": 4, "width": 3, "edge_p": 0.5}
        )
        edge_sets = {
            tuple(
                sorted(
                    (u.name, v.name)
                    for u, v in build_workload(base.with_seed(s)).graph.edges()
                )
            )
            for s in range(6)
        }
        assert len(edge_sets) > 1

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.family)
    def test_fingerprint_stable_across_processes(self, spec):
        """Same spec in a fresh interpreter ⇒ bit-identical program
        fingerprint, so MeasurementCache contexts hit across runs."""
        code = (
            "from repro.workloads import WorkloadSpec, build_workload\n"
            "from repro.exec import program_fingerprint\n"
            f"spec = WorkloadSpec({spec.family!r}, {spec.param_dict!r}, "
            f"seed={spec.seed})\n"
            "print(program_fingerprint(build_workload(spec)))\n"
        )
        import repro

        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        assert out.stdout.strip() == program_fingerprint(build_workload(spec))
