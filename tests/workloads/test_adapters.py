"""Adapter fidelity: registry-built apps match the direct builders.

The adapters must be pure translations — a registry-built program is
graph-isomorphic (here: identical, vertex names included) to the direct
builder's output, down to the timing fingerprint the measurement cache
keys on.
"""

import pytest

from repro.apps.halo import GridCase, build_halo_program
from repro.apps.spmv import SpmvCase, build_spmv_program
from repro.errors import WorkloadError
from repro.exec import program_fingerprint
from repro.workloads import WorkloadSpec, build_workload


def _graph_summary(program):
    vertices = sorted(
        (v.name, v.kind.value, v.action.kind.value if v.action else None)
        for v in program.graph
    )
    edges = sorted((u.name, v.name) for u, v in program.graph.edges())
    return vertices, edges


class TestSpmvAdapter:
    def test_identical_to_direct_builder(self):
        direct = build_spmv_program(SpmvCase().scaled(0.025)).program
        adapted = build_workload(WorkloadSpec("spmv", {"scale": 0.025}))
        assert _graph_summary(adapted) == _graph_summary(direct)
        assert program_fingerprint(adapted) == program_fingerprint(direct)

    def test_bandwidth_fraction_forwarded(self):
        adapted = build_workload(
            WorkloadSpec("spmv", {"scale": 0.025, "bandwidth_frac": 0.125})
        )
        direct = build_spmv_program(
            SpmvCase(bandwidth=150_000 * 0.125).scaled(0.025)
        ).program
        assert program_fingerprint(adapted) == program_fingerprint(direct)

    def test_seed_forwarded_to_matrix(self):
        a = build_workload(WorkloadSpec("spmv", {"scale": 0.025}, seed=0))
        b = build_workload(WorkloadSpec("spmv", {"scale": 0.025}, seed=1))
        # different matrix ⇒ different per-rank work ⇒ different fingerprint
        assert program_fingerprint(a) != program_fingerprint(b)

    def test_upscale_actually_scales(self):
        up = build_workload(WorkloadSpec("spmv", {"scale": 2.0}))
        base = build_workload(WorkloadSpec("spmv", {"scale": 1.0}))
        assert program_fingerprint(up) != program_fingerprint(base)

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(WorkloadError, match="must be positive"):
            build_workload(WorkloadSpec("spmv", {"scale": 0.0}))


class TestHaloAdapter:
    PARAMS = {"nx": 32, "ny": 32, "nz": 32, "px": 2, "py": 2, "pz": 1}

    def test_identical_to_direct_builder(self):
        direct = build_halo_program(
            GridCase(**self.PARAMS), axes=(0, 1)
        )
        adapted = build_workload(
            WorkloadSpec("halo3d", {**self.PARAMS, "axes": "xy"})
        )
        assert _graph_summary(adapted) == _graph_summary(direct)
        assert program_fingerprint(adapted) == program_fingerprint(direct)

    def test_axes_subset(self):
        adapted = build_workload(
            WorkloadSpec("halo3d", {**self.PARAMS, "axes": "z"})
        )
        names = {v.name for v in adapted.graph}
        assert "Pack_z" in names
        assert "Pack_x" not in names
        assert set(adapted.comm) == {"halo_z"}

    @pytest.mark.parametrize("axes", ["xw", "", "ab"])
    def test_invalid_axes_rejected(self, axes):
        with pytest.raises(WorkloadError, match="subset of 'xyz'"):
            build_workload(
                WorkloadSpec("halo3d", {**self.PARAMS, "axes": axes})
            )
