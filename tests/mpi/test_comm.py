"""Tests for the simulated MPI layer (point-to-point)."""

import numpy as np
import pytest

from repro.errors import DeadlockError, MpiError
from repro.mpi.comm import SimMpiWorld, run_spmd
from repro.platform.presets import noiseless, perlmutter_like


@pytest.fixture()
def machine():
    return noiseless(perlmutter_like(n_ranks=4))


class TestPointToPoint:
    def test_send_recv_roundtrip(self, machine):
        def prog(comm):
            if comm.rank == 0:
                yield from comm.send(np.arange(8.0), dest=1, tag=3)
                return None
            if comm.rank == 1:
                data = yield from comm.recv(source=0, tag=3)
                return data
            return None
            yield  # pragma: no cover

        results, elapsed = run_spmd(machine, prog)
        assert np.array_equal(results[1], np.arange(8.0))
        assert elapsed > 0

    def test_isend_wait(self, machine):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(np.ones(4), dest=1)
                yield from comm.wait(req)
                return True
            if comm.rank == 1:
                req = comm.irecv(source=0, nbytes=32.0)
                data = yield from comm.wait(req)
                return float(data.sum())
            return None
            yield  # pragma: no cover

        results, _ = run_spmd(machine, prog)
        assert results[1] == 4.0

    def test_data_copied_not_aliased(self, machine):
        def prog(comm):
            if comm.rank == 0:
                buf = np.zeros(4)
                req = comm.isend(buf, dest=1)
                buf[:] = 99.0  # mutate after isend: receiver must see zeros
                yield from comm.wait(req)
            elif comm.rank == 1:
                data = yield from comm.recv(source=0)
                return float(data.sum())
            return None
            yield  # pragma: no cover

        results, _ = run_spmd(machine, prog)
        assert results[1] == 0.0

    def test_message_order_preserved(self, machine):
        def prog(comm):
            if comm.rank == 0:
                r1 = comm.isend(np.array([1.0]), dest=1, tag=7)
                r2 = comm.isend(np.array([2.0]), dest=1, tag=7)
                yield from comm.waitall([r1, r2])
            elif comm.rank == 1:
                a = yield from comm.recv(source=0, tag=7)
                b = yield from comm.recv(source=0, tag=7)
                return (float(a[0]), float(b[0]))
            return None
            yield  # pragma: no cover

        results, _ = run_spmd(machine, prog)
        assert results[1] == (1.0, 2.0)

    def test_unmatched_recv_deadlocks(self, machine):
        def prog(comm):
            if comm.rank == 1:
                yield from comm.recv(source=0, tag=9)
            return None
            yield  # pragma: no cover

        with pytest.raises(DeadlockError):
            run_spmd(machine, prog)

    def test_self_send_rejected(self, machine):
        world = SimMpiWorld(machine)
        from repro.mpi.comm import SimComm

        comm = SimComm(world, 0)
        with pytest.raises(MpiError, match="self-messages"):
            comm.isend(np.ones(1), dest=0)

    def test_bad_peer_rejected(self, machine):
        world = SimMpiWorld(machine)
        from repro.mpi.comm import SimComm

        comm = SimComm(world, 0)
        with pytest.raises(MpiError, match="out of range"):
            comm.irecv(source=17)

    def test_compute_advances_clock(self, machine):
        def prog(comm):
            yield from comm.compute(5e-6)
            return comm.env.now

        results, elapsed = run_spmd(machine, prog)
        assert all(r == pytest.approx(5e-6) for r in results)
        assert elapsed == pytest.approx(5e-6)
