"""Tests for collectives built over the simulated point-to-point layer."""

import numpy as np
import pytest

from repro.mpi.comm import run_spmd
from repro.platform.presets import noiseless, perlmutter_like


def machine(n):
    return noiseless(perlmutter_like(n_ranks=n))


@pytest.mark.parametrize("n_ranks", [2, 3, 4, 7, 8])
class TestBcast:
    def test_all_ranks_receive(self, n_ranks):
        def prog(comm):
            value = np.array([123.0]) if comm.rank == 0 else None
            out = yield from comm.bcast(value, root=0)
            return float(out[0])

        results, _ = run_spmd(machine(n_ranks), prog)
        assert results == [123.0] * n_ranks

    def test_nonzero_root(self, n_ranks):
        root = n_ranks - 1

        def prog(comm):
            value = np.array([7.0]) if comm.rank == root else None
            out = yield from comm.bcast(value, root=root)
            return float(out[0])

        results, _ = run_spmd(machine(n_ranks), prog)
        assert results == [7.0] * n_ranks


@pytest.mark.parametrize("n_ranks", [2, 4, 5])
class TestAllreduce:
    def test_sum(self, n_ranks):
        def prog(comm):
            out = yield from comm.allreduce_sum(np.array([float(comm.rank)]))
            return float(out[0])

        results, _ = run_spmd(machine(n_ranks), prog)
        expected = sum(range(n_ranks))
        assert results == [expected] * n_ranks


class TestBarrierGather:
    def test_barrier_synchronizes(self):
        def prog(comm):
            # Rank 0 computes 10us before the barrier; everyone leaves the
            # barrier no earlier than that.
            if comm.rank == 0:
                yield from comm.compute(10e-6)
            yield from comm.barrier()
            return comm.env.now

        results, _ = run_spmd(machine(4), prog)
        assert all(t >= 10e-6 for t in results)

    def test_gather(self):
        def prog(comm):
            out = yield from comm.gather(comm.rank * 2, root=1)
            return out

        results, _ = run_spmd(machine(4), prog)
        assert results[1] == [0, 2, 4, 6]
        assert results[0] is None

    def test_single_rank_degenerate(self):
        def prog(comm):
            v = yield from comm.bcast(np.array([5.0]), root=0)
            s = yield from comm.allreduce_sum(np.array([3.0]))
            yield from comm.barrier()
            return float(v[0]) + float(s[0])

        results, _ = run_spmd(machine(1), prog)
        assert results == [8.0]
