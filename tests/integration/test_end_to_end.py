"""Integration tests: the full system on custom programs and paper scale."""

import pytest

from repro.core.pipeline import DesignRulePipeline, PipelineConfig
from repro.dag.graph import Graph
from repro.dag.program import Program
from repro.dag.vertex import cpu_op, gpu_op
from repro.platform import noiseless, perlmutter_like
from repro.schedule import DesignSpace
from repro.sim import MeasurementConfig


class TestCustomProgramPipeline:
    """The library is usable on programs the paper never saw."""

    def make_program(self):
        # Two independent GPU kernels feeding a CPU reduction.
        k1 = gpu_op("k1", duration=5e-6)
        k2 = gpu_op("k2", duration=3e-6)
        red = cpu_op("reduce", duration=1e-6)
        g = Graph()
        g.add_edge(k1, red)
        g.add_edge(k2, red)
        return Program(graph=g.with_start_end(), n_ranks=1, name="toy")

    def test_pipeline_runs_and_rules_mention_streams(self):
        program = self.make_program()
        machine = noiseless(perlmutter_like(n_ranks=1))
        pipe = DesignRulePipeline(
            program,
            machine,
            PipelineConfig(
                strategy="exhaustive",
                measurement=MeasurementConfig(max_samples=1),
            ),
        )
        result = pipe.run()
        assert result.labeling.n_classes >= 1
        # The dominant performance effect in this toy program is whether
        # the kernels share a stream; the features must capture it.
        feature_names = {f.name for f in result.features.features}
        assert "stream(k1,k2)" in feature_names

    def test_same_stream_slower_than_split(self):
        program = self.make_program()
        machine = noiseless(perlmutter_like(n_ranks=1))
        space = DesignSpace(program, n_streams=2)
        from repro.sim import Benchmarker, ScheduleExecutor

        bench = Benchmarker(
            ScheduleExecutor(program, machine), MeasurementConfig(max_samples=1)
        )
        times = {}
        for s in space.enumerate_schedules():
            same = s.stream_of("k1") == s.stream_of("k2")
            times.setdefault(same, []).append(bench.time_of(s))
        assert min(times[True]) > min(times[False])


@pytest.mark.slow
class TestPaperScale:
    """Full paper-scale SpMV (150k rows) through the whole pipeline."""

    def test_paper_scale_three_classes_and_spread(self):
        from repro.experiments import default_workbench, run_fig1, run_fig4

        wb = default_workbench()
        fig1 = run_fig1(wb)
        assert 1.3 < fig1.speedup < 1.8    # paper: 1.47x
        assert 50e-6 < fig1.best_time < 80e-6   # paper: ~55 us fastest
        fig4 = run_fig4(wb)
        assert fig4.labeling.n_classes == 3    # paper: 3 classes

    def test_paper_scale_table5_monotone(self):
        from repro.experiments import default_workbench, run_table5

        wb = default_workbench()
        r = run_table5(wb)
        assert r.accuracies[-1] == 1.0
        assert r.accuracies[0] < r.accuracies[-1]
