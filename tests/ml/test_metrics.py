"""Tests for evaluation metrics."""

import numpy as np

from repro.ml.labeling import ClassInfo
from repro.ml.metrics import confusion_matrix, range_accuracy, training_error
from repro.ml.tree import DecisionTree


def fitted_tree():
    x = np.array([[0], [0], [1], [1]], dtype=np.uint8)
    y = np.array([0, 0, 1, 1])
    return DecisionTree().fit(x, y), x, y


class TestTrainingError:
    def test_perfect(self):
        t, x, y = fitted_tree()
        assert training_error(t, x, y) == 0.0

    def test_half_wrong(self):
        t, x, _ = fitted_tree()
        y_flipped = np.array([0, 1, 1, 0])
        assert training_error(t, x, y_flipped) == 0.5


class TestRangeAccuracy:
    def test_all_within_range(self):
        t, x, _ = fitted_tree()
        classes = [
            ClassInfo(label=0, start=0, stop=2, t_min=1.0, t_max=2.0),
            ClassInfo(label=1, start=2, stop=4, t_min=3.0, t_max=4.0),
        ]
        times = np.array([1.5, 1.9, 3.5, 3.9])
        assert range_accuracy(t, x, times, classes) == 1.0

    def test_out_of_range_counted_wrong(self):
        t, x, _ = fitted_tree()
        classes = [
            ClassInfo(label=0, start=0, stop=2, t_min=1.0, t_max=2.0),
            ClassInfo(label=1, start=2, stop=4, t_min=3.0, t_max=4.0),
        ]
        # Second sample's time (5.0) is outside class 0's range; the last
        # two are inside class 1's.
        times = np.array([1.5, 5.0, 3.5, 3.9])
        assert range_accuracy(t, x, times, classes) == 0.75

    def test_empty_inputs(self):
        t, _, _ = fitted_tree()
        assert range_accuracy(t, np.zeros((0, 1)), np.array([]), []) == 0.0


class TestConfusion:
    def test_diagonal_when_perfect(self):
        m = confusion_matrix(np.array([0, 1, 2]), np.array([0, 1, 2]), 3)
        assert np.array_equal(m, np.eye(3, dtype=int))

    def test_counts(self):
        m = confusion_matrix(
            np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]), 2
        )
        assert m.tolist() == [[1, 1], [0, 2]]
