"""Tests for performance-class labeling (paper §IV-A / Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LabelingError
from repro.ml.labeling import (
    LabelingConfig,
    label_by_performance,
    step_kernel_convolution,
)


def two_level_data(n0=50, n1=50, lo=1.0, hi=2.0, jitter=0.01, seed=0):
    rng = np.random.default_rng(seed)
    a = lo + jitter * rng.random(n0)
    b = hi + jitter * rng.random(n1)
    data = np.concatenate([a, b])
    rng.shuffle(data)
    return data


class TestConvolution:
    def test_jump_produces_peak(self):
        data = np.sort(two_level_data())
        conv = step_kernel_convolution(data, radius=3)
        peak_pos = int(np.argmax(conv))
        # Output index i maps to sorted index i + radius.
        assert abs((peak_pos + 3) - 50) <= 1

    def test_flat_signal_zero(self):
        conv = step_kernel_convolution(np.ones(40), radius=2)
        assert np.allclose(conv, 0.0)

    def test_short_signal_empty(self):
        assert step_kernel_convolution(np.ones(3), radius=2).size == 0

    def test_invalid_radius(self):
        with pytest.raises(LabelingError):
            step_kernel_convolution(np.ones(10), radius=0)


class TestLabeling:
    def test_two_clear_classes(self):
        data = two_level_data()
        res = label_by_performance(data)
        assert res.n_classes == 2
        # Every sample in the fast cluster gets class 0.
        assert (res.labels[data < 1.5] == 0).all()
        assert (res.labels[data > 1.5] == 1).all()

    def test_three_classes(self):
        rng = np.random.default_rng(1)
        data = np.concatenate(
            [1 + 0.01 * rng.random(40),
             2 + 0.01 * rng.random(40),
             3 + 0.01 * rng.random(40)]
        )
        rng.shuffle(data)
        res = label_by_performance(data)
        assert res.n_classes == 3

    def test_uniform_data_single_class(self):
        res = label_by_performance(np.linspace(1.0, 1.001, 100))
        # No prominent jump: everything may collapse to very few classes.
        assert res.n_classes <= 2

    def test_class_ranges_ordered_disjoint(self):
        res = label_by_performance(two_level_data())
        classes = res.classes
        for a, b in zip(classes, classes[1:]):
            assert a.t_max <= b.t_min
            assert a.stop == b.start

    def test_labels_in_original_order(self):
        data = two_level_data()
        res = label_by_performance(data)
        for value, label in zip(data, res.labels):
            c = res.classes[label]
            assert c.t_min <= value <= c.t_max

    def test_empty_rejected(self):
        with pytest.raises(LabelingError):
            label_by_performance([])

    def test_radius_scaling(self):
        cfg = LabelingConfig()
        assert cfg.radius(100) == 1       # max(1, 0.5) -> min radius
        assert cfg.radius(2000) == 10     # 0.5% of 2000
        assert cfg.radius(10) == 1

    def test_class_of_time_inside_and_outside(self):
        res = label_by_performance(two_level_data())
        assert res.class_of_time(1.005) == 0
        assert res.class_of_time(2.005) == 1
        # Between ranges: attributed to nearest class.
        assert res.class_of_time(1.2) == 0
        assert res.class_of_time(1.9) == 1

    @given(
        st.lists(
            st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_on_arbitrary_data(self, values):
        res = label_by_performance(values)
        n = len(values)
        assert len(res.labels) == n
        # Every sample is labeled with an existing class.
        assert set(np.unique(res.labels)) <= {c.label for c in res.classes}
        # Class sizes partition the data.
        assert sum(c.size for c in res.classes) == n
        # Boundaries strictly inside (0, n).
        assert ((res.boundaries > 0) & (res.boundaries < n)).all()

    def test_spmv_labeling_three_classes(self, spmv_noisy_exhaustive):
        """The paper's SpMV yields 3 performance classes."""
        res = label_by_performance(spmv_noisy_exhaustive.times())
        assert res.n_classes == 3
