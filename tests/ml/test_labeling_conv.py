"""Focused tests for the convolution's index mapping (Fig. 4 alignment)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.labeling import (
    LabelingConfig,
    label_by_performance,
    step_kernel_convolution,
)


class TestIndexMapping:
    @pytest.mark.parametrize("radius", [1, 2, 5])
    @pytest.mark.parametrize("jump_at", [20, 50, 79])
    def test_boundary_lands_on_jump(self, radius, jump_at):
        """A single step in the sorted data must produce a boundary at the
        exact step position, for every radius."""
        n = 100
        data = np.concatenate(
            [np.full(jump_at, 1.0), np.full(n - jump_at, 2.0)]
        )
        # tiny increasing ramp keeps the sort stable and peaks strict
        data = data + np.linspace(0, 1e-9, n)
        cfg = LabelingConfig(
            radius_fraction=radius / n, min_radius=radius
        )
        res = label_by_performance(data, cfg)
        assert res.n_classes == 2
        assert res.boundaries.tolist() == [jump_at]
        assert res.classes[0].size == jump_at

    def test_convolution_length(self):
        a = np.sort(np.random.default_rng(0).random(50))
        conv = step_kernel_convolution(a, radius=4)
        # valid region minus the trailing element we drop
        assert len(conv) == 50 - 2 * 4

    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=20,
            max_size=80,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_convolution_nonnegative_on_sorted(self, radius, values):
        """On a sorted array the future-minus-past window sum is >= 0."""
        a = np.sort(np.array(values))
        conv = step_kernel_convolution(a, radius=radius)
        assert (conv >= -1e-12).all()

    def test_two_jumps_two_boundaries(self):
        data = np.concatenate(
            [np.full(30, 1.0), np.full(30, 2.0), np.full(30, 3.0)]
        ) + np.linspace(0, 1e-9, 90)
        res = label_by_performance(
            data, LabelingConfig(min_radius=1, radius_fraction=0.01)
        )
        assert res.boundaries.tolist() == [30, 60]
