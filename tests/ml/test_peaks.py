"""Tests for peak detection, cross-checked against scipy.signal."""

import numpy as np
import scipy.signal
from hypothesis import given, settings, strategies as st

from repro.ml.peaks import find_peaks, peak_prominences, prominent_peaks


class TestFindPeaks:
    def test_simple_peak(self):
        x = np.array([0, 1, 0])
        assert find_peaks(x).tolist() == [1]

    def test_no_peaks_monotone(self):
        assert find_peaks(np.arange(10)).size == 0
        assert find_peaks(np.arange(10)[::-1]).size == 0

    def test_short_signal(self):
        assert find_peaks(np.array([1.0])).size == 0
        assert find_peaks(np.array([1.0, 2.0])).size == 0

    def test_multiple_peaks(self):
        x = np.array([0, 2, 0, 3, 0, 1, 0])
        assert find_peaks(x).tolist() == [1, 3, 5]

    def test_plateau_reports_left_edge(self):
        x = np.array([0, 2, 2, 2, 0])
        assert find_peaks(x).tolist() == [1]

    def test_endpoints_not_peaks(self):
        x = np.array([5, 1, 1, 1, 5])
        assert find_peaks(x).size == 0

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=3,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_on_strict_signals(self, values):
        """On signals without plateaus our peaks equal scipy's."""
        x = np.array(values)
        # Perturb exact ties so there are no plateaus.
        x = x + np.linspace(0, 1e-9, len(x))
        ours = find_peaks(x)
        theirs, _ = scipy.signal.find_peaks(x)
        assert ours.tolist() == theirs.tolist()


class TestProminences:
    def test_isolated_peak_full_height(self):
        x = np.array([0.0, 5.0, 0.0])
        peaks = find_peaks(x)
        assert peak_prominences(x, peaks).tolist() == [5.0]

    def test_nested_peak_prominence(self):
        x = np.array([0.0, 10.0, 4.0, 6.0, 0.0])
        peaks = find_peaks(x)
        proms = peak_prominences(x, peaks)
        # scipy reference values
        ref = scipy.signal.peak_prominences(x, peaks)[0]
        assert proms.tolist() == ref.tolist()

    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=5,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_prominences(self, values):
        x = np.array(values) + np.linspace(0, 1e-9, len(values))
        peaks = find_peaks(x)
        if peaks.size == 0:
            return
        ours = peak_prominences(x, peaks)
        theirs = scipy.signal.peak_prominences(x, peaks)[0]
        assert np.allclose(ours, theirs)


class TestProminentPeaks:
    def test_threshold_filters_small_peaks(self):
        x = np.array([0, 1, 0, 10, 0, 1, 0, 1, 0], dtype=float)
        peaks, proms, threshold = prominent_peaks(x, percentile=90)
        assert peaks.tolist() == [3]
        assert proms.tolist() == [10.0]

    def test_no_peaks_graceful(self):
        peaks, proms, thr = prominent_peaks(np.arange(5.0))
        assert peaks.size == 0
        assert thr == 0.0

    def test_percentile_zero_keeps_all(self):
        x = np.array([0, 1, 0, 2, 0, 3, 0], dtype=float)
        peaks, _, _ = prominent_peaks(x, percentile=0)
        assert peaks.tolist() == [1, 3, 5]
