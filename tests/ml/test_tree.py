"""Tests for the from-scratch CART decision tree."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.metrics import training_error
from repro.ml.tree import DecisionTree, TreeConfig, _impurity


class TestImpurity:
    def test_pure_zero(self):
        assert _impurity(np.array([10.0, 0.0]), "gini") == 0.0
        assert _impurity(np.array([10.0, 0.0]), "entropy") == 0.0

    def test_uniform_max(self):
        assert _impurity(np.array([5.0, 5.0]), "gini") == pytest.approx(0.5)
        assert _impurity(np.array([5.0, 5.0]), "entropy") == pytest.approx(1.0)

    def test_empty_zero(self):
        assert _impurity(np.zeros(3), "gini") == 0.0


class TestConfigValidation:
    def test_bad_criterion(self):
        with pytest.raises(TrainingError):
            TreeConfig(criterion="mse")

    def test_bad_leaf_count(self):
        with pytest.raises(TrainingError):
            TreeConfig(max_leaf_nodes=1)

    def test_bad_class_weight(self):
        with pytest.raises(TrainingError):
            TreeConfig(class_weight="magic")


def xor_data():
    x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 10, dtype=np.uint8)
    y = np.array([a ^ b for a, b in x], dtype=int)
    return x, y


class TestFitPredict:
    def test_single_feature_split(self):
        x = np.array([[0], [0], [1], [1]], dtype=np.uint8)
        y = np.array([0, 0, 1, 1])
        t = DecisionTree().fit(x, y)
        assert t.n_leaves == 2
        assert t.predict(x).tolist() == [0, 0, 1, 1]

    def test_xor_needs_three_leaves(self):
        x, y = xor_data()
        t = DecisionTree(TreeConfig(max_leaf_nodes=4)).fit(x, y)
        assert training_error(t, x, y) == 0.0
        assert t.n_leaves >= 3

    def test_max_leaf_nodes_respected(self):
        x, y = xor_data()
        t = DecisionTree(TreeConfig(max_leaf_nodes=2)).fit(x, y)
        assert t.n_leaves == 2

    def test_max_depth_respected(self):
        x, y = xor_data()
        t = DecisionTree(TreeConfig(max_depth=1)).fit(x, y)
        assert t.depth <= 1

    def test_pure_data_single_leaf(self):
        x = np.zeros((10, 3), dtype=np.uint8)
        y = np.zeros(10, dtype=int)
        t = DecisionTree().fit(x, y)
        assert t.n_leaves == 1
        assert t.predict(x).tolist() == [0] * 10

    def test_unfitted_predict_rejected(self):
        with pytest.raises(TrainingError):
            DecisionTree().predict(np.zeros((1, 1)))

    def test_input_validation(self):
        with pytest.raises(TrainingError):
            DecisionTree().fit(np.zeros(3), np.zeros(3))
        with pytest.raises(TrainingError):
            DecisionTree().fit(np.zeros((3, 1)), np.zeros(2))
        with pytest.raises(TrainingError):
            DecisionTree().fit(np.zeros((0, 1)), np.zeros(0))

    def test_numeric_threshold_split(self):
        """Non-binary features split at value midpoints."""
        x = np.array([[1.0], [2.0], [10.0], [11.0]])
        y = np.array([0, 0, 1, 1])
        t = DecisionTree().fit(x, y)
        assert t.predict(np.array([[5.0]])).tolist() == [0]
        assert t.predict(np.array([[9.0]])).tolist() == [1]


class TestBalancedWeights:
    def test_minority_class_not_swamped(self):
        """95/5 imbalance: with balanced weights the minority class is
        predicted on its own side of a perfect split."""
        x = np.array([[0]] * 95 + [[1]] * 5, dtype=np.uint8)
        y = np.array([0] * 95 + [1] * 5)
        t = DecisionTree(TreeConfig(class_weight="balanced")).fit(x, y)
        assert t.predict(np.array([[1]], dtype=np.uint8)).tolist() == [1]

    def test_root_proportions_balanced(self):
        x = np.array([[0]] * 90 + [[1]] * 10, dtype=np.uint8)
        y = np.array([0] * 90 + [1] * 10)
        t = DecisionTree(TreeConfig(class_weight="balanced")).fit(x, y)
        # Weighted root proportions are ~50/50 regardless of raw imbalance
        # (this is why the paper's Fig. 6 root shows 33.3%/33.3%/33.3%).
        props = t.root.class_proportions()
        assert props[0] == pytest.approx(0.5)
        assert props[1] == pytest.approx(0.5)


class TestStructure:
    def test_paths_cover_all_leaves(self):
        x, y = xor_data()
        t = DecisionTree(TreeConfig(max_leaf_nodes=4)).fit(x, y)
        paths = t.paths()
        assert len(paths) == t.n_leaves
        # Applying each path's conditions reaches its leaf.
        for conds, leaf in paths:
            row = np.zeros(x.shape[1], dtype=np.uint8)
            for f, val in conds:
                row[f] = 1 if val else 0
            assert t.apply(row[None, :])[0] == leaf.node_id

    def test_render_contains_samples_and_classes(self):
        x, y = xor_data()
        t = DecisionTree(TreeConfig(max_leaf_nodes=3)).fit(x, y)
        out = t.render(feature_names=["f0 is one", "f1 is one"])
        assert "samples=" in out
        assert "classes=[" in out
        assert "f0 is one" in out or "f1 is one" in out

    def test_leaf_count_consistency(self):
        x, y = xor_data()
        t = DecisionTree(TreeConfig(max_leaf_nodes=4)).fit(x, y)
        assert len(t.leaves()) == t.n_leaves
        assert sum(leaf.n_samples for leaf in t.leaves()) == len(y)
