"""Tests for Algorithm 1 (tree-size search)."""

import numpy as np
import pytest

from repro.ml.hyperparam import search_tree_size
from repro.ml.metrics import training_error


def make_data(seed=0, n=200, f=6, k=3):
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 2, size=(n, f)).astype(np.uint8)
    # Labels from a hidden depth-3 rule + noise-free mapping.
    y = (x[:, 0] * 2 + (x[:, 1] & x[:, 2])).astype(int) % k
    return x, y


class TestAlgorithm1:
    def test_starts_at_two_leaves(self):
        x, y = make_data()
        _, trace = search_tree_size(x, y)
        assert trace.leaf_nodes[0] == 2

    def test_chosen_error_is_trace_minimum(self):
        x, y = make_data()
        clf, trace = search_tree_size(x, y)
        assert training_error(clf, x, y) == pytest.approx(min(trace.errors))

    def test_max_depth_bound_is_leaves_minus_one(self):
        x, y = make_data()
        clf, trace = search_tree_size(x, y)
        for mln, depth in zip(trace.leaf_nodes, trace.depths):
            assert depth <= mln - 1

    def test_stops_after_patience_without_improvement(self):
        """Once error stops shrinking, at most `patience` more sizes are
        tried past the accepted one."""
        x, y = make_data()
        _, trace = search_tree_size(x, y, patience=5)
        best = min(trace.errors)
        best_at = trace.errors.index(best)
        assert len(trace.errors) - 1 - best_at <= 5

    def test_separable_data_reaches_zero(self):
        x, y = make_data()
        clf, trace = search_tree_size(x, y)
        assert min(trace.errors) == 0.0

    def test_entropy_criterion_works(self):
        x, y = make_data()
        clf, _ = search_tree_size(x, y, criterion="entropy")
        assert training_error(clf, x, y) == 0.0

    def test_trace_rows(self):
        x, y = make_data()
        _, trace = search_tree_size(x, y)
        rows = trace.rows()
        assert len(rows) == len(trace.leaf_nodes)
        assert all(len(r) == 3 for r in rows)

    def test_spmv_full_space(self, spmv_exhaustive):
        """On the real SpMV labels the search reaches zero training error
        with a small tree (paper: 13 leaves, depth 6)."""
        from repro.ml.features import FeatureExtractor
        from repro.ml.labeling import label_by_performance

        lab = label_by_performance(spmv_exhaustive.times())
        fm = FeatureExtractor().fit_transform(spmv_exhaustive.schedules())
        clf, trace = search_tree_size(fm.matrix, lab.labels)
        assert training_error(clf, fm.matrix, lab.labels) <= 0.02
        assert clf.n_leaves <= 25
