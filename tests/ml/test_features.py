"""Tests for the sequence-to-vector feature transformation (§IV-B)."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.features import FeatureExtractor, OrderFeature, StreamFeature


class TestFeatureNaming:
    def test_order_feature_text(self):
        f = OrderFeature("Pack", "yL")
        assert f.describe(True) == "Pack before yL"
        assert f.describe(False) == "yL before Pack"

    def test_stream_feature_text(self):
        f = StreamFeature("Pack", "yL")
        assert f.describe(True) == "Pack same stream as yL"
        assert f.describe(False) == "Pack different stream than yL"


class TestExtractor:
    def test_unfitted_transform_rejected(self, spmv_schedules):
        with pytest.raises(TrainingError):
            FeatureExtractor().transform(spmv_schedules[:2])

    def test_fit_on_empty_rejected(self):
        with pytest.raises(TrainingError):
            FeatureExtractor().fit([])

    def test_constant_columns_dropped(self, spmv_schedules):
        fx = FeatureExtractor()
        fm = fx.fit_transform(spmv_schedules)
        # No column is constant.
        for j in range(fm.n_features):
            col = fm.matrix[:, j]
            assert col.min() != col.max()

    def test_forced_orders_not_features(self, spmv_schedules):
        """DAG-implied orders (e.g. Pack before PostSends) are constant and
        must have been pruned."""
        fx = FeatureExtractor()
        fx.fit(spmv_schedules)
        pairs = {
            (f.u, f.v)
            for f in fx.features
            if isinstance(f, OrderFeature)
        }
        assert ("Pack", "PostSends") not in pairs
        assert ("PostSends", "WaitSend") not in pairs

    def test_stream_features_for_gpu_pairs(self, spmv_schedules):
        fx = FeatureExtractor()
        fx.fit(spmv_schedules)
        stream_pairs = {
            frozenset((f.u, f.v))
            for f in fx.features
            if isinstance(f, StreamFeature)
        }
        assert stream_pairs == {
            frozenset(("Pack", "yL")),
            frozenset(("Pack", "yR")),
            frozenset(("yL", "yR")),
        }

    def test_values_match_schedule(self, spmv_schedules):
        fx = FeatureExtractor()
        fm = fx.fit_transform(spmv_schedules)
        s = spmv_schedules[123]
        row = fm.matrix[123]
        for j, f in enumerate(fm.features):
            if isinstance(f, OrderFeature):
                expected = s.position(f.u) < s.position(f.v)
            else:
                expected = s.stream_of(f.u) == s.stream_of(f.v)
            assert bool(row[j]) == expected

    def test_transform_consistent_on_subset_then_full(self, spmv_schedules):
        """Fitting on a subset must featurize the full space consistently
        (the Table V generalization path)."""
        fx = FeatureExtractor()
        fx.fit(spmv_schedules[:100])
        fm_full = fx.transform(spmv_schedules)
        assert fm_full.matrix.shape == (len(spmv_schedules), len(fx.features))

    def test_matrix_dtype_binary(self, spmv_schedules):
        fm = FeatureExtractor().fit_transform(spmv_schedules[:50])
        assert fm.matrix.dtype == np.uint8
        assert set(np.unique(fm.matrix)) <= {0, 1}

    def test_column_lookup(self, spmv_schedules):
        fx = FeatureExtractor()
        fm = fx.fit_transform(spmv_schedules[:50])
        f = fm.features[0]
        assert np.array_equal(fm.column(f), fm.matrix[:, 0])
