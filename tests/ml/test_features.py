"""Tests for the sequence-to-vector feature transformation (§IV-B)."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.features import (
    FeatureExtractor,
    OrderFeature,
    StreamFeature,
    StreamingFeatureFit,
)


class TestFeatureNaming:
    def test_order_feature_text(self):
        f = OrderFeature("Pack", "yL")
        assert f.describe(True) == "Pack before yL"
        assert f.describe(False) == "yL before Pack"

    def test_stream_feature_text(self):
        f = StreamFeature("Pack", "yL")
        assert f.describe(True) == "Pack same stream as yL"
        assert f.describe(False) == "Pack different stream than yL"


class TestExtractor:
    def test_unfitted_transform_rejected(self, spmv_schedules):
        with pytest.raises(TrainingError):
            FeatureExtractor().transform(spmv_schedules[:2])

    def test_fit_on_empty_rejected(self):
        with pytest.raises(TrainingError):
            FeatureExtractor().fit([])

    def test_constant_columns_dropped(self, spmv_schedules):
        fx = FeatureExtractor()
        fm = fx.fit_transform(spmv_schedules)
        # No column is constant.
        for j in range(fm.n_features):
            col = fm.matrix[:, j]
            assert col.min() != col.max()

    def test_forced_orders_not_features(self, spmv_schedules):
        """DAG-implied orders (e.g. Pack before PostSends) are constant and
        must have been pruned."""
        fx = FeatureExtractor()
        fx.fit(spmv_schedules)
        pairs = {
            (f.u, f.v)
            for f in fx.features
            if isinstance(f, OrderFeature)
        }
        assert ("Pack", "PostSends") not in pairs
        assert ("PostSends", "WaitSend") not in pairs

    def test_stream_features_for_gpu_pairs(self, spmv_schedules):
        fx = FeatureExtractor()
        fx.fit(spmv_schedules)
        stream_pairs = {
            frozenset((f.u, f.v))
            for f in fx.features
            if isinstance(f, StreamFeature)
        }
        assert stream_pairs == {
            frozenset(("Pack", "yL")),
            frozenset(("Pack", "yR")),
            frozenset(("yL", "yR")),
        }

    def test_values_match_schedule(self, spmv_schedules):
        fx = FeatureExtractor()
        fm = fx.fit_transform(spmv_schedules)
        s = spmv_schedules[123]
        row = fm.matrix[123]
        for j, f in enumerate(fm.features):
            if isinstance(f, OrderFeature):
                expected = s.position(f.u) < s.position(f.v)
            else:
                expected = s.stream_of(f.u) == s.stream_of(f.v)
            assert bool(row[j]) == expected

    def test_transform_consistent_on_subset_then_full(self, spmv_schedules):
        """Fitting on a subset must featurize the full space consistently
        (the Table V generalization path)."""
        fx = FeatureExtractor()
        fx.fit(spmv_schedules[:100])
        fm_full = fx.transform(spmv_schedules)
        assert fm_full.matrix.shape == (len(spmv_schedules), len(fx.features))

    def test_matrix_dtype_binary(self, spmv_schedules):
        fm = FeatureExtractor().fit_transform(spmv_schedules[:50])
        assert fm.matrix.dtype == np.uint8
        assert set(np.unique(fm.matrix)) <= {0, 1}

    def test_column_lookup(self, spmv_schedules):
        fx = FeatureExtractor()
        fm = fx.fit_transform(spmv_schedules[:50])
        f = fm.features[0]
        assert np.array_equal(fm.column(f), fm.matrix[:, 0])


class TestStreamingFit:
    def _common_ops(self, spmv_space):
        return spmv_space.all_op_names()

    @pytest.mark.parametrize("block_size", [1, 7, 64, 10_000])
    def test_bit_identical_to_fit_transform(
        self, spmv_space, spmv_schedules, block_size
    ):
        """Chunked accumulation with incremental column compaction must
        reproduce the all-at-once fit exactly: same features, same order,
        same matrix bytes."""
        fm_ref = FeatureExtractor().fit_transform(spmv_schedules)
        fit = StreamingFeatureFit(self._common_ops(spmv_space))
        for i in range(0, len(spmv_schedules), block_size):
            fit.add_block(spmv_schedules[i : i + block_size])
        fx, fm = fit.finish()
        assert fm.features == fm_ref.features
        assert fm.matrix.dtype == fm_ref.matrix.dtype
        assert np.array_equal(fm.matrix, fm_ref.matrix)
        assert fx.features == fm_ref.features

    def test_counts_surface(self, spmv_space, spmv_schedules):
        fit = StreamingFeatureFit(self._common_ops(spmv_space))
        assert fit.n_candidates == 0
        fit.add_block(spmv_schedules[:32])
        assert fit.n_candidates > 0
        mid = fit.n_varying
        assert 0 < mid <= fit.n_candidates
        for i in range(32, len(spmv_schedules), 64):
            fit.add_block(spmv_schedules[i : i + 64])
        _, fm = fit.finish()
        # Varying can only grow as more schedules arrive, and the final
        # count is exactly the surviving feature count.
        assert fit.n_varying >= mid
        assert fit.n_varying == fm.n_features

    def test_empty_block_is_noop(self, spmv_space, spmv_schedules):
        fit = StreamingFeatureFit(self._common_ops(spmv_space))
        fit.add_block([])
        fit.add_block(spmv_schedules[:16])
        fit.add_block([])
        assert fit.n_schedules == 16
        fm_ref = FeatureExtractor().fit_transform(spmv_schedules[:16])
        _, fm = fit.finish()
        assert np.array_equal(fm.matrix, fm_ref.matrix)

    def test_zero_schedules_rejected(self, spmv_space):
        with pytest.raises(TrainingError):
            StreamingFeatureFit(self._common_ops(spmv_space)).finish()

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(TrainingError):
            StreamingFeatureFit([])

    def test_transform_after_finish(self, spmv_space, spmv_schedules):
        """The sealed extractor featurizes held-out schedules just like a
        conventionally fitted one (the rule-transfer path)."""
        fit = StreamingFeatureFit(self._common_ops(spmv_space))
        fit.add_block(spmv_schedules[:100])
        fx, _ = fit.finish()
        fm = fx.transform(spmv_schedules[100:150])
        ref = FeatureExtractor()
        ref.fit(spmv_schedules[:100])
        assert np.array_equal(fm.matrix, ref.transform(
            spmv_schedules[100:150]
        ).matrix)
