"""Property-based tests for the decision tree."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ml.metrics import training_error
from repro.ml.tree import DecisionTree, TreeConfig


@st.composite
def binary_datasets(draw):
    n = draw(st.integers(min_value=4, max_value=80))
    f = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=2, max_value=3))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    x = rng.integers(0, 2, size=(n, f)).astype(np.uint8)
    y = rng.integers(0, k, size=n)
    return x, y


@given(binary_datasets())
@settings(max_examples=40, deadline=None)
def test_unbounded_tree_perfect_on_consistent_data(data):
    """With no size limits, error is zero unless identical rows carry
    different labels (inconsistent data)."""
    x, y = data
    t = DecisionTree().fit(x, y)
    keys = [tuple(row) for row in x]
    consistent = len({(k, int(lbl)) for k, lbl in zip(keys, y)}) == len(set(keys))
    if consistent:
        assert training_error(t, x, y) == 0.0


@given(binary_datasets(), st.integers(min_value=2, max_value=10))
@settings(max_examples=40, deadline=None)
def test_leaf_budget_respected(data, mln):
    x, y = data
    t = DecisionTree(TreeConfig(max_leaf_nodes=mln)).fit(x, y)
    assert 1 <= t.n_leaves <= mln
    assert t.depth <= t.n_leaves - 1 or t.n_leaves == 1


@given(binary_datasets())
@settings(max_examples=30, deadline=None)
def test_error_non_increasing_in_leaf_budget(data):
    """Best-first growth: a bigger leaf budget never raises weighted
    impurity; we check the practical corollary on unweighted trees."""
    x, y = data
    errors = []
    for mln in (2, 4, 8, 16):
        t = DecisionTree(TreeConfig(max_leaf_nodes=mln, class_weight=None)).fit(x, y)
        errors.append(training_error(t, x, y))
    # Not strictly monotone sample-wise, but the min so far never degrades
    # by more than numerical noise when budget doubles:
    assert errors[-1] <= errors[0] + 1e-12


@given(binary_datasets())
@settings(max_examples=30, deadline=None)
def test_predictions_are_known_classes(data):
    x, y = data
    t = DecisionTree(TreeConfig(max_leaf_nodes=6)).fit(x, y)
    pred = t.predict(x)
    assert set(pred) <= set(range(int(y.max()) + 1))


@given(binary_datasets())
@settings(max_examples=30, deadline=None)
def test_leaf_sample_partition(data):
    x, y = data
    t = DecisionTree(TreeConfig(max_leaf_nodes=8)).fit(x, y)
    assert sum(leaf.n_samples for leaf in t.leaves()) == len(y)
    # apply() maps every sample to an existing leaf.
    leaf_ids = {leaf.node_id for leaf in t.leaves()}
    assert set(t.apply(x)) <= leaf_ids


@given(binary_datasets())
@settings(max_examples=20, deadline=None)
def test_gini_and_entropy_both_fit(data):
    x, y = data
    for crit in ("gini", "entropy"):
        t = DecisionTree(TreeConfig(criterion=crit, max_leaf_nodes=6)).fit(x, y)
        assert t.n_leaves >= 1
