"""Tests for the end-to-end pipeline orchestrator."""

import pytest

from repro.core.pipeline import DesignRulePipeline, PipelineConfig
from repro.errors import SearchError
from repro.sim.measure import MeasurementConfig


@pytest.fixture(scope="module")
def pipeline(spmv_instance, machine):
    return DesignRulePipeline(
        spmv_instance.program,
        machine,
        PipelineConfig(
            strategy="mcts",
            n_iterations=80,
            measurement=MeasurementConfig(max_samples=1),
            seed=0,
        ),
    )


@pytest.fixture(scope="module")
def result(pipeline):
    return pipeline.run()


class TestPipeline:
    def test_produces_all_stages(self, result):
        assert len(result.search) > 0
        assert result.labeling.n_classes >= 1
        assert result.features.matrix.shape[0] == len(result.search)
        assert result.tree.n_leaves >= 1
        assert len(result.rulesets) == result.tree.n_leaves

    def test_labels_match_search_order(self, result):
        assert len(result.labeling.labels) == len(result.search)

    def test_rulesets_classes_exist(self, result):
        labels = {c.label for c in result.labeling.classes}
        for rs in result.rulesets:
            assert rs.predicted_class in labels

    def test_summary_text(self, result):
        text = result.summary()
        assert "performance classes" in text
        assert "tree:" in text

    def test_rulesets_for_class(self, result):
        for c in result.labeling.classes:
            for rs in result.rulesets_for_class(c.label):
                assert rs.predicted_class == c.label

    def test_unknown_strategy_rejected(self, spmv_instance, machine):
        pipe = DesignRulePipeline(
            spmv_instance.program, machine, PipelineConfig(strategy="magic")
        )
        with pytest.raises(SearchError):
            pipe.explore()

    def test_exhaustive_strategy_covers_space(self, spmv_instance, machine, spmv_space):
        pipe = DesignRulePipeline(
            spmv_instance.program,
            machine,
            PipelineConfig(
                strategy="exhaustive",
                measurement=MeasurementConfig(max_samples=1),
            ),
        )
        search = pipe.explore()
        assert len(search) == spmv_space.count()

    def test_generalization_accuracy_bounds(self, pipeline, result, spmv_instance, machine, spmv_space):
        from repro.core.pipeline import DesignRulePipeline, PipelineConfig

        full_pipe = DesignRulePipeline(
            spmv_instance.program,
            machine,
            PipelineConfig(
                strategy="exhaustive",
                measurement=MeasurementConfig(max_samples=1),
            ),
        )
        full = full_pipe.explore()
        acc = pipeline.generalization_accuracy(result, full)
        assert 0.0 <= acc <= 1.0
        # 80 of 540 iterations should already generalize reasonably.
        assert acc > 0.4

    def test_full_space_accuracy_is_one(self, spmv_instance, machine):
        pipe = DesignRulePipeline(
            spmv_instance.program,
            machine,
            PipelineConfig(
                strategy="exhaustive",
                measurement=MeasurementConfig(max_samples=1),
            ),
        )
        search = pipe.explore()
        result = pipe.run(search)
        assert pipe.generalization_accuracy(result, search) == 1.0


class TestStreamingPipeline:
    """run_streaming: bounded schedule residency, bit-identical output."""

    @pytest.fixture(scope="class")
    def exhaustive_config(self):
        return PipelineConfig(
            strategy="exhaustive",
            measurement=MeasurementConfig(max_samples=1),
        )

    @pytest.fixture(scope="class")
    def materialized(self, spmv_instance, machine, exhaustive_config):
        pipe = DesignRulePipeline(
            spmv_instance.program, machine, exhaustive_config
        )
        return pipe.run()

    @pytest.fixture(scope="class")
    def streamed(self, spmv_instance, machine, exhaustive_config):
        pipe = DesignRulePipeline(
            spmv_instance.program, machine, exhaustive_config
        )
        return pipe.run_streaming(block_size=37)

    def test_bit_identical_to_materializing_run(self, materialized, streamed):
        import numpy as np

        assert np.array_equal(
            materialized.labeling.labels, streamed.labeling.labels
        )
        assert np.array_equal(
            materialized.features.matrix, streamed.features.matrix
        )
        assert [f.name for f in materialized.features.features] == [
            f.name for f in streamed.features.features
        ]
        assert materialized.tree.n_leaves == streamed.tree.n_leaves
        assert [str(r) for r in materialized.rulesets] == [
            str(r) for r in streamed.rulesets
        ]
        assert materialized.training_error == streamed.training_error

    def test_residency_bounded_by_block_size(self, streamed, spmv_space):
        assert streamed.peak_resident <= 37
        assert streamed.n_schedules == spmv_space.count()
        assert streamed.n_unique == streamed.n_schedules
        assert streamed.n_blocks == -(-streamed.n_schedules // 37)

    def test_summary_reports_streaming_stats(self, streamed):
        text = streamed.summary()
        assert "streamed" in text
        assert "peak 37 resident" in text or "peak" in text

    def test_feature_compaction_stats(self, streamed):
        assert streamed.n_candidate_features > 0
        assert 0 < streamed.n_varying_features <= streamed.n_candidate_features
        assert (
            f"kept {streamed.n_varying_features} varying of "
            f"{streamed.n_candidate_features} candidates"
        ) in streamed.summary()

    def test_requires_exhaustive_strategy(self, spmv_instance, machine):
        pipe = DesignRulePipeline(
            spmv_instance.program, machine, PipelineConfig(strategy="mcts")
        )
        with pytest.raises(SearchError, match="exhaustive"):
            pipe.run_streaming()

    def test_block_size_config_default(self, spmv_instance, machine):
        """PipelineConfig.block_size drives run_streaming when no explicit
        size is passed."""
        pipe = DesignRulePipeline(
            spmv_instance.program,
            machine,
            PipelineConfig(
                strategy="exhaustive",
                measurement=MeasurementConfig(max_samples=1),
                block_size=100,
            ),
        )
        result = pipe.run_streaming()
        assert result.peak_resident <= 100
        assert result.n_blocks == -(-result.n_schedules // 100)
