"""Tests for the end-to-end pipeline orchestrator."""

import pytest

from repro.core.pipeline import DesignRulePipeline, PipelineConfig
from repro.errors import SearchError
from repro.sim.measure import MeasurementConfig


@pytest.fixture(scope="module")
def pipeline(spmv_instance, machine):
    return DesignRulePipeline(
        spmv_instance.program,
        machine,
        PipelineConfig(
            strategy="mcts",
            n_iterations=80,
            measurement=MeasurementConfig(max_samples=1),
            seed=0,
        ),
    )


@pytest.fixture(scope="module")
def result(pipeline):
    return pipeline.run()


class TestPipeline:
    def test_produces_all_stages(self, result):
        assert len(result.search) > 0
        assert result.labeling.n_classes >= 1
        assert result.features.matrix.shape[0] == len(result.search)
        assert result.tree.n_leaves >= 1
        assert len(result.rulesets) == result.tree.n_leaves

    def test_labels_match_search_order(self, result):
        assert len(result.labeling.labels) == len(result.search)

    def test_rulesets_classes_exist(self, result):
        labels = {c.label for c in result.labeling.classes}
        for rs in result.rulesets:
            assert rs.predicted_class in labels

    def test_summary_text(self, result):
        text = result.summary()
        assert "performance classes" in text
        assert "tree:" in text

    def test_rulesets_for_class(self, result):
        for c in result.labeling.classes:
            for rs in result.rulesets_for_class(c.label):
                assert rs.predicted_class == c.label

    def test_unknown_strategy_rejected(self, spmv_instance, machine):
        pipe = DesignRulePipeline(
            spmv_instance.program, machine, PipelineConfig(strategy="magic")
        )
        with pytest.raises(SearchError):
            pipe.explore()

    def test_exhaustive_strategy_covers_space(self, spmv_instance, machine, spmv_space):
        pipe = DesignRulePipeline(
            spmv_instance.program,
            machine,
            PipelineConfig(
                strategy="exhaustive",
                measurement=MeasurementConfig(max_samples=1),
            ),
        )
        search = pipe.explore()
        assert len(search) == spmv_space.count()

    def test_generalization_accuracy_bounds(self, pipeline, result, spmv_instance, machine, spmv_space):
        from repro.core.pipeline import DesignRulePipeline, PipelineConfig

        full_pipe = DesignRulePipeline(
            spmv_instance.program,
            machine,
            PipelineConfig(
                strategy="exhaustive",
                measurement=MeasurementConfig(max_samples=1),
            ),
        )
        full = full_pipe.explore()
        acc = pipeline.generalization_accuracy(result, full)
        assert 0.0 <= acc <= 1.0
        # 80 of 540 iterations should already generalize reasonably.
        assert acc > 0.4

    def test_full_space_accuracy_is_one(self, spmv_instance, machine):
        pipe = DesignRulePipeline(
            spmv_instance.program,
            machine,
            PipelineConfig(
                strategy="exhaustive",
                measurement=MeasurementConfig(max_samples=1),
            ),
        )
        search = pipe.explore()
        result = pipe.run(search)
        assert pipe.generalization_accuracy(result, search) == 1.0
