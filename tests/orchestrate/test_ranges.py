"""Range-sharded exhaustive search: partitioning, tasks, bit-identity."""

import pytest

from repro.errors import WorkloadError
from repro.orchestrate import (
    TASK_SEARCH_RANGE,
    WorkloadTask,
    estimate_task_cost,
    partition_ranges,
    run_range_sharded_search,
)
from repro.platform.presets import noiseless, perlmutter_like
from repro.schedule.space import DesignSpace
from repro.search.exhaustive import ExhaustiveSearch
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, MeasurementConfig
from repro.workloads import WorkloadSpec, build_workload

MEASUREMENT = MeasurementConfig(max_samples=1)

FORK = WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1})


class TestPartitionRanges:
    @pytest.mark.parametrize(
        "total,n_shards", [(0, 1), (1, 1), (10, 3), (10, 10), (3, 7), (40, 4)]
    )
    def test_partition_is_exact_and_contiguous(self, total, n_shards):
        ranges = partition_ranges(total, n_shards)
        assert sum(r.limit for r in ranges) == total
        pos = 0
        for r in ranges:
            assert r.start == pos
            assert r.limit >= 1
            pos = r.stop
        assert pos == total
        # Near-equal: limits differ by at most one.
        if ranges:
            limits = [r.limit for r in ranges]
            assert max(limits) - min(limits) <= 1

    def test_more_shards_than_schedules_drops_empties(self):
        ranges = partition_ranges(3, 7)
        assert len(ranges) == 3

    def test_invalid_inputs_rejected(self):
        with pytest.raises(WorkloadError):
            partition_ranges(-1, 2)
        with pytest.raises(WorkloadError):
            partition_ranges(10, 0)


class TestSearchRangeTask:
    def test_task_requires_bounds(self):
        with pytest.raises(WorkloadError, match="range_start"):
            WorkloadTask(index=0, kind=TASK_SEARCH_RANGE, spec=FORK)
        with pytest.raises(WorkloadError, match=">= 0"):
            WorkloadTask(
                index=0,
                kind=TASK_SEARCH_RANGE,
                spec=FORK,
                range_start=-1,
                range_limit=4,
            )

    def test_cost_is_range_length(self):
        task = WorkloadTask(
            index=0,
            kind=TASK_SEARCH_RANGE,
            spec=FORK,
            range_start=10,
            range_limit=25,
        )
        assert estimate_task_cost(task) == 25.0


class TestRangeShardedSearch:
    def _serial(self, machine):
        program = build_workload(FORK)
        space = DesignSpace(program, n_streams=2)
        return ExhaustiveSearch(
            space,
            Benchmarker(
                ScheduleExecutor(
                    program, machine.with_ranks(program.n_ranks)
                ),
                MEASUREMENT,
            ),
        ).run()

    def test_merged_bit_identical_to_serial(self):
        machine = noiseless(perlmutter_like())
        serial = self._serial(machine)
        for n_shards in (1, 2, 3):
            sharded = run_range_sharded_search(
                FORK,
                machine=machine,
                n_shards=n_shards,
                measurement=MEASUREMENT,
            )
            assert sharded.total == len(serial.samples)
            assert [
                (s.schedule.fingerprint(), s.time)
                for s in sharded.result.samples
            ] == [
                (s.schedule.fingerprint(), s.time) for s in serial.samples
            ], n_shards
            assert sharded.result.n_iterations == serial.n_iterations
            assert sharded.result.n_simulations == serial.n_simulations

    def test_sharded_processes_bit_identical_to_serial(self):
        """The actual multi-process path: three range tasks on two shard
        workers, merged in task order."""
        machine = noiseless(perlmutter_like())
        serial = self._serial(machine)
        sharded = run_range_sharded_search(
            FORK,
            machine=machine,
            n_shards=3,
            measurement=MEASUREMENT,
            shard_workers=2,
        )
        assert [
            (s.schedule.fingerprint(), s.time)
            for s in sharded.result.samples
        ] == [(s.schedule.fingerprint(), s.time) for s in serial.samples]
        assert sharded.timing["n_tasks"] == 3

    def test_noise_does_not_break_identity(self):
        """Measurement noise comes from stable hashes — a pure function
        of the schedule — so sharding commutes with noisy measurement."""
        machine = perlmutter_like(noise_sigma=0.05)
        serial = self._serial(machine)
        sharded = run_range_sharded_search(
            FORK,
            machine=machine,
            n_shards=2,
            measurement=MEASUREMENT,
        )
        assert [s.time for s in sharded.result.samples] == [
            s.time for s in serial.samples
        ]
