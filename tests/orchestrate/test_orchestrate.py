"""repro.orchestrate: plan construction, execution, shard determinism."""

import pytest

from repro.errors import WorkloadError
from repro.orchestrate import (
    TASK_SUITE_CELLS,
    TASK_WORKLOAD_RULES,
    ExecutionPlan,
    WorkloadTask,
    estimate_task_cost,
    execute_plan,
    plan_rules,
    plan_suite,
    restore_rules_payload,
    submission_order,
)
from repro.platform.presets import perlmutter_like
from repro.sim.measure import MeasurementConfig
from repro.workloads import Suite, WorkloadSpec

MEASUREMENT = MeasurementConfig(max_samples=1)

SPECS = (
    WorkloadSpec("wavefront", {"width": 2, "height": 2}),
    WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
)

TINY = Suite(
    name="tiny",
    description="two tiny workloads",
    specs=SPECS,
    strategies=("random", "mcts"),
    n_iterations=4,
    measurement=MEASUREMENT,
)

TINY_RULES = Suite(
    name="tiny-rules",
    description="tiny with cross-workload rules",
    specs=SPECS,
    strategies=("random",),
    n_iterations=4,
    measurement=MEASUREMENT,
    cross_workload_rules=True,
)


def _machine():
    return perlmutter_like()


class TestPlans:
    def test_plan_suite_one_task_per_workload(self):
        plan = plan_suite(TINY, machine=_machine())
        assert len(plan) == len(TINY.specs)
        assert all(t.kind == TASK_SUITE_CELLS for t in plan.tasks)
        assert [t.index for t in plan.tasks] == [0, 1]
        assert [t.spec for t in plan.tasks] == list(TINY.specs)
        assert all(t.strategies == TINY.strategies for t in plan.tasks)

    def test_cross_workload_suite_adds_rules_tasks(self):
        plan = plan_suite(TINY_RULES, machine=_machine())
        assert len(plan.tasks_of_kind(TASK_SUITE_CELLS)) == 2
        assert len(plan.tasks_of_kind(TASK_WORKLOAD_RULES)) == 2

    def test_plan_rules(self):
        plan = plan_rules(
            SPECS, machine=_machine(), measurement=MEASUREMENT
        )
        assert [t.kind for t in plan.tasks] == [TASK_WORKLOAD_RULES] * 2

    def test_unknown_task_kind_rejected(self):
        with pytest.raises(WorkloadError, match="unknown task kind"):
            WorkloadTask(index=0, kind="nope", spec=SPECS[0])

    def test_suite_task_needs_strategies(self):
        with pytest.raises(WorkloadError, match="strategy"):
            WorkloadTask(index=0, kind=TASK_SUITE_CELLS, spec=SPECS[0])

    def test_misindexed_plan_rejected(self):
        task = WorkloadTask(
            index=1, kind=TASK_WORKLOAD_RULES, spec=SPECS[0]
        )
        with pytest.raises(WorkloadError, match="indexed contiguously"):
            ExecutionPlan(machine=_machine(), tasks=(task,))

    def test_forward_dependency_rejected(self):
        tasks = (
            WorkloadTask(
                index=0,
                kind=TASK_WORKLOAD_RULES,
                spec=SPECS[0],
                depends_on=(1,),
            ),
            WorkloadTask(index=1, kind=TASK_WORKLOAD_RULES, spec=SPECS[1]),
        )
        with pytest.raises(WorkloadError, match="topologically"):
            ExecutionPlan(machine=_machine(), tasks=tasks)


def _comparable_cells(run):
    return [
        {k: v for k, v in cell.to_dict().items() if k != "wall_s"}
        for result in run.of_kind(TASK_SUITE_CELLS)
        for cell in result.payload
    ]


class TestExecution:
    def test_serial_execution_ordered_and_timed(self):
        plan = plan_suite(TINY, machine=_machine())
        run = execute_plan(plan)
        assert [r.index for r in run.results] == [0, 1]
        assert run.shard_workers == 0
        timing = run.timing()
        assert timing["n_tasks"] == 2
        for row in timing["tasks"]:
            assert row["wall_s"] > 0
            assert "build" in row["stages"]
            assert "search:random" in row["stages"]

    def test_sharded_bit_identical_to_serial(self):
        plan = plan_suite(TINY, machine=_machine())
        serial = execute_plan(plan)
        sharded = execute_plan(plan, shard_workers=2)
        assert sharded.shard_workers == 2
        assert _comparable_cells(serial) == _comparable_cells(sharded)

    def test_rules_plan_sharded_matches_serial(self):
        plan = plan_rules(
            SPECS, machine=_machine(), measurement=MEASUREMENT
        )
        serial = execute_plan(plan)
        sharded = execute_plan(plan, shard_workers=2)
        for a, b in zip(serial.results, sharded.results):
            wa = restore_rules_payload(a)
            wb = restore_rules_payload(b)
            assert wa.spec == wb.spec
            assert [r.text for r in wa.rules] == [r.text for r in wb.rules]
            assert [s.fingerprint() for s in wa.fast_schedules] == [
                s.fingerprint() for s in wb.fast_schedules
            ]
            assert wa.program is not None and wb.program is not None
            # the rules task records the pipeline's stage DAG
            stages = dict(b.stages)
            assert {"build", "enumerate", "label+train", "extract-rules"} <= set(
                stages
            )

    def test_dependencies_gate_submission(self):
        """A dependent task still runs (after its prerequisite) and
        results stay index-ordered."""
        tasks = (
            WorkloadTask(
                index=0,
                kind=TASK_WORKLOAD_RULES,
                spec=SPECS[0],
                measurement=MEASUREMENT,
            ),
            WorkloadTask(
                index=1,
                kind=TASK_WORKLOAD_RULES,
                spec=SPECS[1],
                measurement=MEASUREMENT,
                depends_on=(0,),
            ),
        )
        plan = ExecutionPlan(machine=_machine(), tasks=tasks)
        run = execute_plan(plan, shard_workers=2)
        assert [r.index for r in run.results] == [0, 1]

    def test_cost_aware_submission_order(self):
        """Sharded submission is costliest-first: the long-pole workload
        (largest design space) hits the pool before cheap ones, so the
        slowest task never starts last.  Pinned on real space counts:
        fork_join(s1,b2,d1) = 40 schedules, wavefront(2x2) = 16."""
        plan = plan_rules(
            SPECS, machine=_machine(), measurement=MEASUREMENT
        )
        costs = {t.index: estimate_task_cost(t) for t in plan.tasks}
        # SPECS order is (wavefront, fork_join): FIFO would submit the
        # cheap wavefront first; cost ordering must flip them.
        assert costs[0] == 16.0
        assert costs[1] == 40.0
        assert submission_order(plan.tasks, costs) == [1, 0]
        # Ties break on index, and unknown costs sort last.
        assert submission_order(plan.tasks, {0: 5.0, 1: 5.0}) == [0, 1]
        assert submission_order(plan.tasks, {}) == [0, 1]

    def test_suite_cells_cost_capped_by_sampling_budget(self):
        """A sampled (suite-cells) task on a big space costs its
        benchmark budget, not the space size, so it cannot outrank an
        exhaustive rules task over the same workload."""
        cells = WorkloadTask(
            index=0,
            kind=TASK_SUITE_CELLS,
            spec=SPECS[1],
            measurement=MEASUREMENT,
            strategies=("random", "mcts"),
            n_iterations=4,
        )
        rules = WorkloadTask(
            index=1,
            kind=TASK_WORKLOAD_RULES,
            spec=SPECS[1],
            measurement=MEASUREMENT,
        )
        assert estimate_task_cost(cells) == 8.0  # 4 iters x 2 strategies
        assert estimate_task_cost(rules) == 40.0  # the whole space
        costs = {0: estimate_task_cost(cells), 1: estimate_task_cost(rules)}
        assert submission_order((cells, rules), costs) == [1, 0]

    def test_cost_ordered_run_results_stay_index_ordered(self):
        """Submission order is a wall-clock concern only: results (and
        every payload) still come back in task-index order."""
        plan = plan_rules(
            SPECS, machine=_machine(), measurement=MEASUREMENT
        )
        run = execute_plan(plan, shard_workers=2)
        assert [r.index for r in run.results] == [0, 1]
        assert [r.label for r in run.results] == [
            s.label for s in SPECS
        ]

    def test_shared_cache_across_shards(self, tmp_path):
        """Two shards writing one cache file; a rerun re-simulates
        nothing and reports identical measurements."""
        cache = str(tmp_path / "shared.sqlite")
        suite = Suite(
            name="tiny",
            description="cached",
            specs=SPECS,
            strategies=("random",),
            n_iterations=4,
            measurement=MEASUREMENT,
        )
        plan = plan_suite(suite, machine=_machine(), cache_path=cache)
        first = execute_plan(plan, shard_workers=2)
        second = execute_plan(plan, shard_workers=2)
        cells_first = _comparable_cells(first)
        cells_second = _comparable_cells(second)
        assert sum(c["n_simulations"] for c in cells_first) > 0
        assert sum(c["n_simulations"] for c in cells_second) == 0
        drop = ("n_simulations",)
        assert [
            {k: v for k, v in c.items() if k not in drop}
            for c in cells_first
        ] == [
            {k: v for k, v in c.items() if k not in drop}
            for c in cells_second
        ]
