"""Unit tests for machine configuration models."""

import pytest

from repro.platform.machine import GpuModel, MachineConfig, NetworkModel, Protocol


class TestNetworkModel:
    def test_transfer_time_alpha_beta(self):
        net = NetworkModel(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
        assert net.transfer_time(0) == pytest.approx(1e-6)
        assert net.transfer_time(1e9) == pytest.approx(1.000001)

    def test_eager_threshold(self):
        net = NetworkModel(eager_threshold_bytes=100)
        assert net.is_eager(100)
        assert not net.is_eager(101)

    def test_default_protocol_rendezvous(self):
        assert NetworkModel().protocol is Protocol.RENDEZVOUS


class TestGpuModel:
    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            GpuModel(flops_per_s=0)
        with pytest.raises(ValueError):
            GpuModel(mem_bw_bytes_per_s=-1)


class TestMachineConfig:
    def test_defaults(self):
        m = MachineConfig()
        assert m.n_ranks == 4
        assert m.n_streams == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(n_ranks=0)
        with pytest.raises(ValueError):
            MachineConfig(n_streams=0)

    def test_with_helpers_return_copies(self):
        m = MachineConfig()
        m2 = m.with_streams(4).with_ranks(8)
        assert (m.n_streams, m.n_ranks) == (2, 4)
        assert (m2.n_streams, m2.n_ranks) == (4, 8)
