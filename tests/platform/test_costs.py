"""Tests for the roofline cost model."""

import pytest

from repro.dag.graph import Graph
from repro.dag.program import Program
from repro.dag.vertex import OpKind, Vertex, Work, cpu_op, gpu_op
from repro.platform.costs import CostModel
from repro.platform.machine import MachineConfig


def make_program(vertex):
    g = Graph()
    g.add_vertex(vertex)
    return Program(graph=g.with_start_end(), n_ranks=1)


@pytest.fixture()
def cost():
    return CostModel(MachineConfig(n_ranks=1))


class TestKernelDuration:
    def test_floor_at_kernel_min(self, cost):
        assert cost.gpu_kernel_duration(Work()) == cost.machine.gpu.kernel_min_s
        assert cost.gpu_kernel_duration(None) == cost.machine.gpu.kernel_min_s

    def test_compute_bound(self, cost):
        g = cost.machine.gpu
        w = Work(flops=g.flops_per_s)  # exactly one second of flops
        assert cost.gpu_kernel_duration(w) == pytest.approx(1.0)

    def test_memory_bound(self, cost):
        g = cost.machine.gpu
        w = Work(bytes_read=g.mem_bw_bytes_per_s * 2)
        assert cost.gpu_kernel_duration(w) == pytest.approx(2.0)

    def test_roofline_max(self, cost):
        g = cost.machine.gpu
        w = Work(flops=g.flops_per_s, bytes_read=g.mem_bw_bytes_per_s * 3)
        assert cost.gpu_kernel_duration(w) == pytest.approx(3.0)


class TestBaseDuration:
    def test_explicit_duration_wins(self, cost):
        v = gpu_op("k", duration=42.0, work=Work(flops=1))
        assert cost.base_duration(make_program(v), v, 0) == 42.0

    def test_sync_ops_cost_overheads(self, cost):
        p = make_program(cpu_op("x"))
        g = cost.machine.gpu
        cer = Vertex(name="r", kind=OpKind.EVENT_RECORD)
        ces = Vertex(name="s", kind=OpKind.EVENT_SYNC)
        csw = Vertex(name="w", kind=OpKind.STREAM_WAIT)
        assert cost.base_duration(p, cer, 0) == g.event_record_s
        assert cost.base_duration(p, ces, 0) == g.event_sync_overhead_s
        assert cost.base_duration(p, csw, 0) == g.stream_wait_overhead_s

    def test_cpu_default(self, cost):
        v = cpu_op("c")
        assert (
            cost.base_duration(make_program(v), v, 0)
            == cost.machine.cpu.default_op_s
        )

    def test_per_rank_override(self, cost):
        v = gpu_op("k")
        p = make_program(v)
        p.work_overrides[("k", 0)] = Work(
            bytes_read=cost.machine.gpu.mem_bw_bytes_per_s
        )
        assert cost.base_duration(p, v, 0) == pytest.approx(1.0)

    def test_monotone_in_work(self, cost):
        v1 = gpu_op("k1", work=Work(flops=1e12))
        v2 = gpu_op("k2", work=Work(flops=2e12))
        p1, p2 = make_program(v1), make_program(v2)
        assert cost.base_duration(p2, v2, 0) >= cost.base_duration(p1, v1, 0)
