"""Tests for the deterministic noise model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.platform.noise import NoiseModel


class TestDeterminism:
    def test_same_key_same_factor(self):
        n = NoiseModel(sigma=0.05, seed=3)
        assert n.factor(0, "a", 1) == n.factor(0, "a", 1)

    def test_different_samples_differ(self):
        n = NoiseModel(sigma=0.05, seed=3)
        assert n.factor(0, "a") != n.factor(1, "a")

    def test_different_seeds_differ(self):
        a = NoiseModel(sigma=0.05, seed=0).factor(0, "x")
        b = NoiseModel(sigma=0.05, seed=1).factor(0, "x")
        assert a != b

    def test_disabled_noise_identity(self):
        n = NoiseModel(sigma=0.0)
        assert n.factor(7, "k") == 1.0
        assert n.jitter(3.5, 7, "k") == 3.5


class TestStatistics:
    def test_mean_close_to_one(self):
        n = NoiseModel(sigma=0.05, seed=0)
        factors = [n.factor(i, "op") for i in range(4000)]
        assert np.mean(factors) == pytest.approx(1.0, abs=0.01)

    def test_spread_scales_with_sigma(self):
        lo = NoiseModel(sigma=0.01, seed=0)
        hi = NoiseModel(sigma=0.10, seed=0)
        s_lo = np.std([lo.factor(i) for i in range(2000)])
        s_hi = np.std([hi.factor(i) for i in range(2000)])
        assert s_hi > 5 * s_lo


class TestValidation:
    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma=-0.1)

    @given(st.floats(min_value=0.0, max_value=0.5), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_jitter_positive(self, sigma, sample):
        n = NoiseModel(sigma=sigma, seed=1)
        assert n.jitter(1e-6, sample, "k") > 0

    def test_zero_duration_untouched(self):
        assert NoiseModel(sigma=0.3).jitter(0.0, 5) == 0.0

    def test_with_helpers(self):
        n = NoiseModel(sigma=0.1, seed=2)
        assert n.with_sigma(0.2).sigma == 0.2
        assert n.with_sigma(0.2).seed == 2
        assert n.with_seed(9).seed == 9
