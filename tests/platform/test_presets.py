"""Tests for platform presets."""

from repro.platform.presets import describe, noiseless, perlmutter_like


def test_perlmutter_like_matches_paper_shape():
    m = perlmutter_like()
    assert m.n_ranks == 4       # paper: 4 MPI ranks in one node
    assert m.n_streams == 2     # paper: two CUDA streams
    assert m.noise.enabled


def test_noiseless_disables_noise_only():
    m = perlmutter_like()
    q = noiseless(m)
    assert not q.noise.enabled
    assert q.net == m.net
    assert q.gpu == m.gpu


def test_noiseless_default_machine():
    assert not noiseless().noise.enabled


def test_describe_mentions_key_fields():
    text = describe(perlmutter_like())
    for token in ("Ranks", "streams", "latency", "bandwidth", "rendezvous"):
        assert token.lower() in text.lower()


def test_custom_args():
    m = perlmutter_like(n_ranks=8, n_streams=4, noise_sigma=0.0, noise_seed=5)
    assert m.n_ranks == 8
    assert m.n_streams == 4
    assert not m.noise.enabled
    assert m.noise.seed == 5
