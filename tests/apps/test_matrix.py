"""Tests for band-diagonal matrix generation."""

import numpy as np
import pytest

from repro.apps.spmv.matrix import band_matrix, matrix_stats


class TestBandMatrix:
    def test_shape_and_nnz(self):
        a = band_matrix(1000, 10_000, bandwidth=250, seed=0)
        assert a.shape == (1000, 1000)
        # Duplicates within a row merge, so nnz is close to but at most 10k.
        assert 0.9 * 10_000 <= a.nnz <= 10_000

    def test_band_respected(self):
        a = band_matrix(500, 5000, bandwidth=50, seed=1)
        coo = a.tocoo()
        assert (np.abs(coo.row - coo.col) <= 50).all()

    def test_deterministic_for_seed(self):
        a = band_matrix(200, 1000, 25, seed=3)
        b = band_matrix(200, 1000, 25, seed=3)
        assert (a != b).nnz == 0

    def test_different_seeds_differ(self):
        a = band_matrix(200, 1000, 25, seed=3)
        b = band_matrix(200, 1000, 25, seed=4)
        assert (a != b).nnz > 0

    def test_rows_balanced(self):
        a = band_matrix(300, 3000, 50, seed=0)
        per_row = np.diff(a.indptr)
        assert per_row.min() >= 1
        assert per_row.max() <= 10

    def test_invalid_rows_rejected(self):
        with pytest.raises(ValueError):
            band_matrix(0, 10, 5)

    def test_paper_case_balances_local_remote(self):
        """bandwidth = n/4 on 4 ranks gives ~equal local/remote nnz
        (the property the paper states the bandwidth was chosen for)."""
        from repro.apps.spmv.partition import partition_spmv

        n = 8000
        a = band_matrix(n, n * 10, bandwidth=n / 4, seed=0)
        parts = partition_spmv(a, 4).parts
        inner = parts[1]  # middle ranks see both neighbours
        ratio = inner.nnz_remote / max(1, inner.nnz_local)
        assert 0.7 < ratio < 1.4

    def test_stats(self):
        a = band_matrix(100, 1000, 20, seed=0)
        s = matrix_stats(a)
        assert s["n_rows"] == 100
        assert s["max_band"] <= 20
        assert 5 <= s["nnz_per_row"] <= 10
