"""End-to-end numeric verification: every schedule computes y = Ax."""

import numpy as np

from repro.sim import ScheduleExecutor


class TestNumericCorrectness:
    def test_sampled_schedules_compute_exact_result(
        self, spmv_instance, machine, spmv_schedules
    ):
        ex = ScheduleExecutor(
            spmv_instance.program,
            machine,
            payload_init=spmv_instance.payload_init,
        )
        ref = spmv_instance.reference_result()
        for s in spmv_schedules[::29]:
            result = ex.run(s)
            y = spmv_instance.gather_result(result.payload)
            assert np.allclose(y, ref)
            assert result.hazard_free

    def test_best_and_worst_schedule_agree(
        self, spmv_instance, machine, spmv_schedules, spmv_exhaustive
    ):
        ex = ScheduleExecutor(
            spmv_instance.program,
            machine,
            payload_init=spmv_instance.payload_init,
        )
        ref = spmv_instance.reference_result()
        times = spmv_exhaustive.times()
        for idx in (int(np.argmin(times)), int(np.argmax(times))):
            s = spmv_exhaustive.samples[idx].schedule
            y = spmv_instance.gather_result(ex.run(s).payload)
            assert np.allclose(y, ref)

    def test_result_independent_of_schedule(
        self, spmv_instance, machine, spmv_schedules
    ):
        ex = ScheduleExecutor(
            spmv_instance.program,
            machine,
            payload_init=spmv_instance.payload_init,
        )
        y1 = spmv_instance.gather_result(ex.run(spmv_schedules[0]).payload)
        y2 = spmv_instance.gather_result(ex.run(spmv_schedules[-1]).payload)
        assert np.allclose(y1, y2)


class TestReference:
    def test_reference_spmv_matches_scipy(self, spmv_instance, machine):
        from repro.apps.spmv.reference import reference_spmv

        y, elapsed = reference_spmv(spmv_instance, machine)
        assert np.allclose(y, spmv_instance.reference_result())
        assert elapsed > 0

    def test_reference_time_comparable_to_good_schedules(
        self, spmv_instance, machine, spmv_exhaustive
    ):
        """The hand-written overlap program should be within the envelope
        of the design space (same platform, same ops)."""
        from repro.apps.spmv.reference import reference_spmv

        _, elapsed = reference_spmv(spmv_instance, machine)
        best = spmv_exhaustive.best().time
        worst = spmv_exhaustive.worst().time
        assert 0.5 * best <= elapsed <= 2.0 * worst
