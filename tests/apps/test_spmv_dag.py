"""Tests for the SpMV program DAG (structure, costs, numerics)."""

from repro.apps.spmv import SpmvCase, build_spmv_program
from repro.platform.costs import CostModel


class TestStructure:
    def test_vertices_match_paper(self, spmv_instance):
        names = set(spmv_instance.program.graph.vertex_names)
        assert names == {
            "start", "end", "Pack", "PostSends", "PostRecvs",
            "WaitSend", "WaitRecv", "yL", "yR",
        }

    def test_gpu_ops(self, spmv_instance):
        gpu = {v.name for v in spmv_instance.program.gpu_vertices()}
        assert gpu == {"Pack", "yL", "yR"}

    def test_paper_edges_present(self, spmv_instance):
        g = spmv_instance.program.graph
        for u, v in [
            ("Pack", "PostSends"),
            ("PostSends", "WaitSend"),
            ("PostRecvs", "WaitRecv"),
            ("WaitRecv", "yR"),
        ]:
            assert v in {s.name for s in g.successors(u)}

    def test_yl_depends_only_on_start(self, spmv_instance):
        preds = spmv_instance.program.graph.predecessors("yL")
        assert [p.name for p in preds] == ["start"]

    def test_unsafe_variant_omits_cross_edges(self, spmv_case):
        inst = build_spmv_program(spmv_case, safe_waits=False)
        g = inst.program.graph
        assert "WaitRecv" not in {
            s.name for s in g.successors("PostSends")
        }


class TestCommPlan:
    def test_messages_match_partition(self, spmv_instance):
        plan = spmv_instance.program.comm_plan("halo")
        pairs = {
            (m.src, m.dst): m.nbytes for m in plan.messages
        }
        for src, dst, count in spmv_instance.partition.message_pairs():
            assert pairs[(src, dst)] == 8.0 * count

    def test_band_matrix_neighbours_only(self, spmv_instance):
        """With bandwidth = n/4, messages stay between adjacent ranks."""
        plan = spmv_instance.program.comm_plan("halo")
        for m in plan.messages:
            assert abs(m.src - m.dst) == 1

    def test_hazard_buffer_declared(self, spmv_instance):
        plan = spmv_instance.program.comm_plan("halo")
        for m in plan.messages:
            assert m.hazard_buf == "send_bufs"
            assert m.src_buf == f"send_to_{m.dst}"
            assert m.dst_buf == f"recv_from_{m.src}"


class TestWork:
    def test_work_overrides_for_all_ranks(self, spmv_instance):
        for rank in range(spmv_instance.case.n_ranks):
            for name in ("Pack", "yL", "yR"):
                assert (name, rank) in spmv_instance.program.work_overrides

    def test_balanced_case_yl_similar_to_yr(self):
        inst = build_spmv_program(SpmvCase())
        cost = CostModel(
            __import__("repro.platform", fromlist=["perlmutter_like"]).perlmutter_like()
        )
        g = inst.program.graph
        # Middle rank: local and remote multiply within 2x of each other.
        yl = cost.base_duration(inst.program, g.vertex("yL"), 1)
        yr = cost.base_duration(inst.program, g.vertex("yR"), 1)
        assert 0.5 < yl / yr < 2.0

    def test_scaled_case_shrinks(self, spmv_case):
        paper = SpmvCase()
        assert spmv_case.n_rows < paper.n_rows
        assert spmv_case.nnz < paper.nnz
        assert spmv_case.n_ranks == paper.n_ranks
