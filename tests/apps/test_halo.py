"""Tests for the 3-D halo-exchange application."""

import pytest

from repro.apps.halo import GridCase, build_halo_program, decompose
from repro.platform import noiseless, perlmutter_like
from repro.schedule import DesignSpace
from repro.search import MctsSearch
from repro.sim import Benchmarker, MeasurementConfig, ScheduleExecutor


@pytest.fixture(scope="module")
def case():
    return GridCase(nx=64, ny=64, nz=32, px=2, py=2, pz=1)


class TestDecomposition:
    def test_rank_count(self, case):
        assert case.n_ranks == 4
        assert len(decompose(case).boxes) == 4

    def test_neighbour_symmetry(self, case):
        decomp = decompose(case)
        for box in decomp.boxes:
            for face, nb in box.neighbours.items():
                axis, sign = face
                opposite = (axis, -sign)
                assert decomp.boxes[nb].neighbours[opposite] == box.rank

    def test_boundary_ranks_missing_faces(self, case):
        decomp = decompose(case)
        corner = decomp.boxes[0]  # coords (0,0,0)
        assert (0, -1) not in corner.neighbours
        assert (1, -1) not in corner.neighbours
        assert (2, -1) not in corner.neighbours

    def test_indivisible_grid_rejected(self):
        with pytest.raises(ValueError):
            GridCase(nx=10, px=3).local_shape()

    def test_face_bytes(self, case):
        decomp = decompose(case)
        lx, ly, lz = case.local_shape()
        assert decomp.face_bytes(0) == ly * lz * 8.0


class TestHaloProgram:
    def test_one_axis_structure(self, case):
        p = build_halo_program(case, axes=(0,))
        names = set(p.graph.vertex_names)
        assert {"Pack_x", "Unpack_x", "Interior", "Boundary"} <= names
        assert "Pack_y" not in names

    def test_gpu_gpu_edges_to_boundary(self, case):
        from repro.schedule.sync import build_sync_plan

        p = build_halo_program(case, axes=(0, 1))
        plan = build_sync_plan(p.graph)
        assert ("Unpack_x", "Boundary") in plan.gpu_gpu_edges
        assert ("Unpack_y", "Boundary") in plan.gpu_gpu_edges

    def test_messages_only_along_axis(self, case):
        p = build_halo_program(case, axes=(0,))
        decomp = decompose(case)
        for m in p.comm_plan("halo_x").messages:
            src, dst = decomp.boxes[m.src], decomp.boxes[m.dst]
            assert src.coords[1:] == dst.coords[1:]  # same y, z

    def test_invalid_axes_rejected(self, case):
        with pytest.raises(ValueError):
            build_halo_program(case, axes=())
        with pytest.raises(ValueError):
            build_halo_program(case, axes=(5,))

    def test_single_axis_space_enumerable(self, case):
        p = build_halo_program(case, axes=(0,))
        space = DesignSpace(p, n_streams=2)
        assert space.count() == 1600

    def test_mcts_explores_multi_axis_space(self, case):
        p = build_halo_program(case, axes=(0, 1))
        space = DesignSpace(p, n_streams=2)
        machine = noiseless(perlmutter_like())
        bench = Benchmarker(
            ScheduleExecutor(p, machine), MeasurementConfig(max_samples=1)
        )
        result = MctsSearch(space, bench).run(60)
        assert len(result) == 60
        for s in result.samples[:10]:
            space.validate_schedule(s.schedule)
        assert result.best().time < result.worst().time

    def test_cross_stream_schedules_simulate(self, case):
        """Schedules binding Unpack and Boundary to different streams carry
        CSWE ops and still execute."""
        p = build_halo_program(case, axes=(0,))
        space = DesignSpace(p, n_streams=2)
        machine = noiseless(perlmutter_like())
        ex = ScheduleExecutor(p, machine)
        found = 0
        for s in space.enumerate_schedules():
            if any("CSWE" in n for n in s.op_names()):
                assert ex.run(s).elapsed > 0
                found += 1
                if found >= 5:
                    break
        assert found == 5
