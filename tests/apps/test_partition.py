"""Tests for SpMV row partitioning and local/remote split."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.spmv.matrix import band_matrix
from repro.apps.spmv.partition import partition_spmv, row_ranges


class TestRowRanges:
    def test_even_split(self):
        assert row_ranges(100, 4) == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_uneven_split_front_loaded(self):
        ranges = row_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        assert ranges[-1][1] == 10

    def test_covers_all_rows(self):
        ranges = row_ranges(1234, 7)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 1234
        for a, b in zip(ranges, ranges[1:]):
            assert a[1] == b[0]


@pytest.fixture(scope="module")
def parted():
    a = band_matrix(1200, 12_000, bandwidth=300, seed=2)
    return a, partition_spmv(a, 4)


class TestPartition:
    def test_nnz_conserved(self, parted):
        a, part = parted
        total = sum(p.nnz_local + p.nnz_remote for p in part.parts)
        assert total == a.nnz

    def test_remote_cols_not_owned(self, parted):
        _, part = parted
        for p in part.parts:
            lo, hi = p.row_lo, p.row_hi
            assert not ((p.remote_cols >= lo) & (p.remote_cols < hi)).any()

    def test_send_recv_symmetry(self, parted):
        """q sends to r exactly the columns r needs from q."""
        _, part = parted
        for p in part.parts:
            for owner, cols in p.needed_from.items():
                send = part.parts[owner].send_idx[p.rank]
                assert np.array_equal(
                    send + part.ranges[owner][0], cols
                )

    def test_message_pairs_consistent(self, parted):
        _, part = parted
        for src, dst, count in part.message_pairs():
            assert count == len(part.parts[dst].needed_from[src])
            assert src != dst

    def test_local_spmv_equals_reference(self, parted):
        """Per-rank local+remote multiply reassembles to A @ x exactly."""
        a, part = parted
        rng = np.random.default_rng(0)
        x = rng.standard_normal(a.shape[0])
        pieces = []
        for p in part.parts:
            x_local = x[p.row_lo : p.row_hi]
            y = p.a_local @ x_local
            x_remote = x[p.remote_cols]
            y = y + p.a_remote @ x_remote
            pieces.append(y)
        assert np.allclose(np.concatenate(pieces), a @ x)

    def test_owner_of(self, parted):
        _, part = parted
        assert part.owner_of(0) == 0
        assert part.owner_of(part.n_rows - 1) == part.n_ranks - 1
        with pytest.raises(ValueError):
            part.owner_of(part.n_rows)

    def test_rectangular_matrix_rejected(self):
        with pytest.raises(ValueError, match="square"):
            partition_spmv(sp.csr_matrix((10, 20)), 2)
