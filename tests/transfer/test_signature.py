"""Tests for structural op signatures (repro.transfer.signature)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.dag.program import CommPlan, Message
from repro.transfer.signature import (
    OpSignature,
    SignatureMatcher,
    classify_topology,
    identity_matcher,
    program_signatures,
    signature_fingerprint,
)
from repro.workloads import WorkloadSpec, build_workload

SPMV = WorkloadSpec("spmv", {"scale": 0.025})
HALO = WorkloadSpec(
    "halo3d",
    {"nx": 32, "ny": 32, "nz": 32, "px": 2, "py": 2, "pz": 1, "axes": "x"},
)
ALLREDUCE = WorkloadSpec("tree_allreduce", {"rounds": 1, "elems": 16384})
WAVEFRONT = WorkloadSpec("wavefront", {"width": 2, "height": 2})
STENCIL = WorkloadSpec("stencil_reduce", {"width": 2, "height": 2})
FORK_JOIN = WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1})

ALL_SPECS = [SPMV, HALO, ALLREDUCE, WAVEFRONT, STENCIL, FORK_JOIN]


@pytest.fixture(scope="module")
def sigs():
    return {
        spec.family: program_signatures(build_workload(spec))
        for spec in ALL_SPECS
    }


class TestTopology:
    def test_pairwise(self):
        plan = CommPlan(
            group="g",
            messages=(
                Message(src=0, dst=1, nbytes=8.0),
                Message(src=1, dst=0, nbytes=8.0),
            ),
        )
        assert classify_topology(plan) == ("pairwise", 1, 1)

    def test_exchange(self):
        msgs = []
        for i in range(3):
            for j in range(3):
                if i != j:
                    msgs.append(Message(src=i, dst=j, nbytes=8.0))
        plan = CommPlan(group="g", messages=tuple(msgs))
        assert classify_topology(plan) == ("exchange", 2, 2)

    def test_fan_in_and_out(self):
        fan_in = CommPlan(
            group="g",
            messages=tuple(
                Message(src=i, dst=0, nbytes=8.0) for i in (1, 2, 3)
            ),
        )
        assert classify_topology(fan_in)[0] == "fan_in"
        fan_out = CommPlan(
            group="g",
            messages=tuple(
                Message(src=0, dst=i, nbytes=8.0) for i in (1, 2, 3)
            ),
        )
        assert classify_topology(fan_out)[0] == "fan_out"

    def test_empty(self):
        assert classify_topology(CommPlan(group="g")) == ("empty", 0, 0)


class TestStructuralIdentity:
    """Identical structural ops across unrelated families sign equally
    (the identity cross-program transfer matches on)."""

    def test_packers_match_spmv_halo(self, sigs):
        # GPU kernels feeding a send post at the head of the chain.
        assert sigs["spmv"]["Pack"] == sigs["halo3d"]["Pack_x"]

    def test_unpackers_match_across_three_programs(self, sigs):
        # GPU kernels consuming a completed receive at the chain's end.
        assert sigs["spmv"]["yR"] == sigs["tree_allreduce"]["Combine_0"]

    def test_post_wait_actions_match_halo_allreduce(self, sigs):
        # Pairwise comm groups: same action, topology, arity, position.
        for a, b in (
            ("PostSends_x", "PostSends_0"),
            ("PostRecvs_x", "PostRecvs_0"),
            ("WaitSend_x", "WaitSend_0"),
            ("WaitRecv_x", "WaitRecv_0"),
        ):
            assert sigs["halo3d"][a] == sigs["tree_allreduce"][b]

    def test_independent_kernels_match(self, sigs):
        # Kernels touching neither start-adjacent comm nor waits: SpMV's
        # local multiply and the halo's interior stencil.
        assert sigs["spmv"]["yL"] == sigs["halo3d"]["Interior"]

    def test_wavefront_and_stencil_tiles_match(self, sigs):
        assert sigs["wavefront"]["T0_0"] == sigs["stencil_reduce"]["T0_0"]
        assert sigs["wavefront"]["T1_0"] == sigs["stencil_reduce"]["T1_0"]

    def test_device_distinguishes(self, sigs):
        # A CPU join is never identified with a GPU kernel.
        assert sigs["fork_join"]["Join0"] != sigs["wavefront"]["T1_1"]

    def test_topology_distinguishes(self, sigs):
        # SpMV's band halo (2 neighbors) vs the pairwise halo exchange.
        assert sigs["spmv"]["PostSends"] != sigs["halo3d"]["PostSends_x"]


class TestSyncDerivation:
    def test_cer_references_base_kernel(self, sigs):
        cer = sigs["spmv"]["CER-after-Pack"]
        assert cer.device == "sync"
        assert cer.action == "cer"
        assert cer.refs == (sigs["spmv"]["Pack"].key,)

    def test_sync_signatures_transfer_with_their_bases(self, sigs):
        # Pack signs equally in spmv and halo3d, so the inserted records
        # and syncs around it do too.
        assert (
            sigs["spmv"]["CER-after-Pack"].key
            == sigs["halo3d"]["CER-after-Pack_x"].key
        )

    def test_cswe_covered(self, sigs):
        assert any(s.action == "cswe" for s in sigs["halo3d"].values())


class TestStability:
    """Signature keys are deterministic and bit-stable across processes —
    the same guarantee WorkloadSpec program fingerprints carry."""

    def test_fingerprint_is_sha256_of_key(self):
        sig = OpSignature(device="gpu", action="kernel")
        assert len(signature_fingerprint(sig)) == 64
        assert signature_fingerprint(sig) == signature_fingerprint(
            OpSignature(device="gpu", action="kernel")
        )

    def test_rebuild_is_identical(self, sigs):
        for spec in ALL_SPECS:
            again = program_signatures(build_workload(spec))
            assert {n: s.key for n, s in again.items()} == {
                n: s.key for n, s in sigs[spec.family].items()
            }

    @pytest.mark.parametrize(
        "spec", [SPMV, HALO, ALLREDUCE, STENCIL], ids=lambda s: s.family
    )
    def test_keys_stable_across_processes(self, spec):
        code = (
            "import hashlib\n"
            "from repro.workloads import WorkloadSpec, build_workload\n"
            "from repro.transfer.signature import (\n"
            "    program_signatures, signature_fingerprint)\n"
            f"spec = WorkloadSpec({spec.family!r}, {spec.param_dict!r}, "
            f"seed={spec.seed})\n"
            "sigs = program_signatures(build_workload(spec))\n"
            "blob = ';'.join(\n"
            "    f'{n}={signature_fingerprint(s)}'\n"
            "    for n, s in sorted(sigs.items()))\n"
            "print(hashlib.sha256(blob.encode()).hexdigest())\n"
        )
        import hashlib

        import repro

        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        sigs = program_signatures(build_workload(spec))
        blob = ";".join(
            f"{n}={signature_fingerprint(s)}" for n, s in sorted(sigs.items())
        )
        assert out.stdout.strip() == hashlib.sha256(blob.encode()).hexdigest()


class TestMatcher:
    def test_maps_both_sides(self, sigs):
        m = SignatureMatcher(sigs["spmv"], sigs["halo3d"])
        assert m.rule_key("Pack") == sigs["spmv"]["Pack"].key
        assert m.op_key("Pack_x") == sigs["halo3d"]["Pack_x"].key
        assert m.rule_key("Pack") == m.op_key("Pack_x")

    def test_unknown_names_do_not_participate(self, sigs):
        m = SignatureMatcher(sigs["spmv"], sigs["halo3d"])
        assert m.rule_key("nope") is None
        assert m.op_key("Pack") is None  # a spmv name, not a halo one

    def test_identity_matcher(self, sigs):
        m = identity_matcher(sigs["spmv"])
        assert m.rule_key("yL") == m.op_key("yL")
