"""Tests for union-feature training (repro.transfer.union +
repro.ml.features.MappedFeatureExtractor)."""

import numpy as np
import pytest

from repro.dag.vertex import cpu_op, gpu_op
from repro.errors import TrainingError
from repro.ml.features import MappedFeatureExtractor, OrderFeature, StreamFeature
from repro.schedule.schedule import BoundOp, Schedule
from repro.transfer.signature import OpSignature
from repro.transfer.union import UnionWorkload, binary_labels, train_union


def _gpu(name, stream):
    return BoundOp(vertex=gpu_op(name), stream=stream)


def _cpu(name):
    return BoundOp(vertex=cpu_op(name))


#: Two "programs" with disjoint naming but identical structure: a packer
#: kernel (key K), a post op (key P), and a worker kernel (key W).
MAP_A = {"PackA": "K", "PostA": "P", "WorkA": "W"}
MAP_B = {"PackB": "K", "PostB": "P", "WorkB": "W"}


def _sched_a(order, streams):
    names = {"K": "PackA", "P": "PostA", "W": "WorkA"}
    ops = []
    for key in order:
        name = names[key]
        if key == "P":
            ops.append(_cpu(name))
        else:
            ops.append(_gpu(name, streams[key]))
    return Schedule(ops)


def _sched_b(order, streams):
    names = {"K": "PackB", "P": "PostB", "W": "WorkB"}
    ops = []
    for key in order:
        name = names[key]
        if key == "P":
            ops.append(_cpu(name))
        else:
            ops.append(_gpu(name, streams[key]))
    return Schedule(ops)


class TestMappedExtractor:
    def test_features_over_shared_keys(self):
        a = [_sched_a("KPW", {"K": 0, "W": 0}), _sched_a("WKP", {"K": 0, "W": 1})]
        b = [_sched_b("KPW", {"K": 0, "W": 1}), _sched_b("PWK", {"K": 1, "W": 0})]
        ex = MappedFeatureExtractor().fit([(a, MAP_A), (b, MAP_B)])
        assert set(ex.keys) == {"K", "P", "W"}
        assert set(ex.gpu_keys) == {"K", "W"}
        names = {f.name for f in ex.features}
        # Features refer to keys, not program-specific op names.
        assert all("Pack" not in n for n in names)

    def test_projection_is_structural(self):
        # The same structural schedule in both programs featurizes equally.
        a = [_sched_a("KPW", {"K": 0, "W": 1}), _sched_a("WKP", {"K": 0, "W": 0})]
        b = [_sched_b("KPW", {"K": 0, "W": 1}), _sched_b("WKP", {"K": 0, "W": 0})]
        ex = MappedFeatureExtractor().fit([(a, MAP_A), (b, MAP_B)])
        ma = ex.transform(a, MAP_A).matrix
        mb = ex.transform(b, MAP_B).matrix
        assert np.array_equal(ma, mb)

    def test_universal_quantification_over_groups(self):
        # Two ops share key K; "K before W" needs *both* before W.
        mapping = {"k1": "K", "k2": "K", "w": "W", "x": "X"}
        both_first = Schedule([_gpu("k1", 0), _gpu("k2", 0), _gpu("w", 0), _gpu("x", 0)])
        interleaved = Schedule([_gpu("k1", 0), _gpu("w", 0), _gpu("k2", 0), _gpu("x", 0)])
        ex = MappedFeatureExtractor().fit(
            [([both_first, interleaved], mapping)]
        )
        f = OrderFeature("K", "W")
        col = ex.transform([both_first, interleaved], mapping).column(f)
        assert col.tolist() == [1, 0]

    def test_missing_key_defaults_to_zero(self):
        a = [_sched_a("KPW", {"K": 0, "W": 0}), _sched_a("WKP", {"K": 0, "W": 1})]
        b = [_sched_b("KPW", {"K": 0, "W": 1}), _sched_b("PWK", {"K": 1, "W": 0})]
        ex = MappedFeatureExtractor().fit([(a, MAP_A), (b, MAP_B)])
        foreign = Schedule([_gpu("Other", 0)])
        m = ex.transform([foreign], {"Other": "K"}).matrix
        assert m.sum() == 0  # nothing evaluable: all defaults

    def test_min_sets_filters_private_keys(self):
        a = [_sched_a("KPW", {"K": 0, "W": 0}), _sched_a("WKP", {"K": 0, "W": 1})]
        only_b = [Schedule([_gpu("PackB", 0), _gpu("Priv", 1)])]
        mapping_b = {"PackB": "K", "Priv": "PRIVATE"}
        ex = MappedFeatureExtractor().fit([(a, MAP_A), (only_b, mapping_b)])
        assert "PRIVATE" not in ex.keys  # appears in one set only

    def test_zero_schedules_rejected(self):
        with pytest.raises(TrainingError, match="zero schedules"):
            MappedFeatureExtractor().fit([([], MAP_A)])

    def test_transform_requires_fit(self):
        with pytest.raises(TrainingError, match="not fitted"):
            MappedFeatureExtractor().transform([], MAP_A)


class TestBinaryLabels:
    def test_fastest_class_is_fast(self):
        labels = binary_labels([0, 1, 2, 0, 3])
        assert labels.tolist() == [0, 1, 1, 0, 1]


def _signatures(mapping):
    return {
        name: OpSignature(device="gpu", action=key)
        for name, key in mapping.items()
    }


def _union_workload(label, schedules, labels, mapping):
    return UnionWorkload(
        label=label,
        schedules=schedules,
        labels=np.asarray(labels),
        signatures=_signatures(mapping),
    )


class TestTrainUnion:
    """Schedules are fast iff K launches before W — learnable from the
    union of two differently-named programs, transferable to a third."""

    def _workloads(self):
        a_fast = [_sched_a("KPW", {"K": 0, "W": 0}), _sched_a("KWP", {"K": 0, "W": 1})]
        a_slow = [_sched_a("WKP", {"K": 0, "W": 0}), _sched_a("PWK", {"K": 1, "W": 0})]
        b_fast = [_sched_b("KPW", {"K": 0, "W": 1}), _sched_b("KWP", {"K": 0, "W": 0})]
        b_slow = [_sched_b("WPK", {"K": 0, "W": 0}), _sched_b("PWK", {"K": 1, "W": 1})]
        wa = _union_workload("A", a_fast + a_slow, [0, 0, 1, 1], MAP_A)
        wb = _union_workload("B", b_fast + b_slow, [0, 0, 1, 1], MAP_B)
        map_c = {"PackC": "K", "PostC": "P", "WorkC": "W"}
        c_scheds = [
            Schedule([_gpu("PackC", 0), _cpu("PostC"), _gpu("WorkC", 1)]),
            Schedule([_gpu("WorkC", 0), _cpu("PostC"), _gpu("PackC", 0)]),
        ]
        wc = _union_workload("C", c_scheds, [0, 1], map_c)
        return [wa, wb, wc]

    def test_holdout_generalizes(self):
        result = train_union(self._workloads(), holdout="C")
        assert result.trained_on == ("A", "B")
        assert result.holdout == "C"
        assert result.train_accuracy == 1.0
        assert result.holdout_accuracy == 1.0

    def test_train_on_all(self):
        result = train_union(self._workloads())
        assert result.holdout is None
        assert result.holdout_accuracy is None
        assert set(result.per_workload_accuracy) == {"A", "B", "C"}

    def test_unknown_holdout_rejected(self):
        with pytest.raises(TrainingError, match="not in the union"):
            train_union(self._workloads(), holdout="nope")

    def test_needs_two_training_workloads(self):
        with pytest.raises(TrainingError, match="at least two"):
            train_union(self._workloads()[:2], holdout="A")

    def test_no_shared_features_rejected(self):
        w1 = _union_workload(
            "X",
            [Schedule([_gpu("a", 0)]), Schedule([_gpu("a", 1)])],
            [0, 1],
            {"a": "KA"},
        )
        w2 = _union_workload(
            "Y",
            [Schedule([_gpu("b", 0)]), Schedule([_gpu("b", 1)])],
            [0, 1],
            {"b": "KB"},
        )
        with pytest.raises(TrainingError, match="no shared"):
            train_union([w1, w2])
