"""Tests for discrimination-aware transfer scoring (repro.transfer.scoring)."""

from repro.dag.vertex import cpu_op, gpu_op
from repro.ml.features import OrderFeature, StreamFeature
from repro.rules.ruleset import Rule
from repro.schedule.schedule import BoundOp, Schedule
from repro.transfer.scoring import (
    DiscriminationScore,
    discrimination_summary,
    score_transfer,
)


def _gpu(name, stream):
    return BoundOp(vertex=gpu_op(name), stream=stream)


def _cpu(name):
    return BoundOp(vertex=cpu_op(name))


#: "A before B" holds on fast schedules, is violated on slow ones.
FAST = [
    Schedule([_gpu("A", 0), _gpu("B", 1), _cpu("C")]),
    Schedule([_gpu("A", 0), _cpu("C"), _gpu("B", 0)]),
]
SLOW = [
    Schedule([_gpu("B", 0), _gpu("A", 1), _cpu("C")]),
    Schedule([_gpu("B", 0), _cpu("C"), _gpu("A", 0)]),
]

GOOD_RULE = Rule(OrderFeature("A", "B"), True)


class TestAlwaysTrueRuleScoresZero:
    def test_injected_always_true_rule_has_zero_discrimination(self):
        # The injected rule holds on every schedule of both classes, so
        # under satisfaction scoring it would "transfer" perfectly; the
        # discrimination gap must be exactly 0.
        fast = [Schedule([_gpu("A", 0), _gpu("B", 0), _cpu("C")])]
        slow = [Schedule([_gpu("A", 0), _cpu("C"), _gpu("B", 1)])]
        control = Rule(OrderFeature("A", "B"), True)  # true on both sides
        [score] = score_transfer([control], fast, slow)
        assert score.fast_satisfaction == 1.0
        assert score.slow_satisfaction == 1.0
        assert score.discrimination == 0.0
        assert score.weight == 0.0

    def test_always_false_rule_also_scores_zero(self):
        fast = [Schedule([_gpu("A", 0), _gpu("B", 0)])]
        slow = [Schedule([_gpu("A", 0), _gpu("B", 1)])]
        never = Rule(OrderFeature("B", "A"), True)
        [score] = score_transfer([never], fast, slow)
        assert score.fast_satisfaction == 0.0
        assert score.slow_satisfaction == 0.0
        assert score.discrimination == 0.0


class TestDiscrimination:
    def test_separating_rule_scores_one(self):
        [score] = score_transfer([GOOD_RULE], FAST, SLOW)
        assert score.fast_satisfaction == 1.0
        assert score.slow_satisfaction == 0.0
        assert score.discrimination == 1.0
        assert score.coverage == 1.0
        assert score.weight == 1.0

    def test_anti_rule_scores_minus_one(self):
        [score] = score_transfer([GOOD_RULE.negated()], FAST, SLOW)
        assert score.discrimination == -1.0

    def test_one_sided_transfer_is_not_transferable(self):
        # The rule's ops exist only in the fast schedules: no gap exists.
        fast = [Schedule([_gpu("X", 0), _gpu("Y", 0)])]
        slow = [Schedule([_gpu("A", 0), _gpu("B", 0)])]
        rule = Rule(OrderFeature("X", "Y"), True)
        [score] = score_transfer([rule], fast, slow)
        assert not score.transfers
        assert score.discrimination == 0.0
        assert 0.0 < score.coverage < 1.0

    def test_stream_rule_discrimination(self):
        fast = [Schedule([_gpu("A", 0), _gpu("B", 0)])]
        slow = [Schedule([_gpu("A", 0), _gpu("B", 1)])]
        same = Rule(StreamFeature("A", "B"), True)
        [score] = score_transfer([same], fast, slow)
        assert score.discrimination == 1.0

    def test_coverage_counts_both_classes(self):
        fast = [Schedule([_gpu("A", 0), _gpu("B", 0)])]
        slow = [
            Schedule([_gpu("A", 0), _gpu("B", 1)]),
            Schedule([_gpu("A", 0), _gpu("C", 1)]),  # no B: not evaluable
        ]
        [score] = score_transfer([GOOD_RULE], fast, slow)
        assert score.n_total == 3
        assert score.coverage == 2 / 3


class TestDegenerateCases:
    def test_no_rules_is_empty(self):
        assert score_transfer([], FAST, SLOW) == []
        assert discrimination_summary([]) == (0, 0, 0.0, 0.0)

    def test_no_schedules_is_all_zero(self):
        [score] = score_transfer([GOOD_RULE], [], [])
        assert score.n_total == 0
        assert score.coverage == 0.0
        assert score.discrimination == 0.0
        assert not score.transfers

    def test_empty_fast_class_only(self):
        [score] = score_transfer([GOOD_RULE], [], SLOW)
        assert not score.transfers
        assert score.discrimination == 0.0

    def test_summary_skips_untransferable(self):
        miss = Rule(OrderFeature("X", "Y"), True)
        scores = score_transfer([GOOD_RULE, miss], FAST, SLOW)
        n_rules, n_trans, mean_disc, mean_cov = discrimination_summary(scores)
        assert (n_rules, n_trans) == (2, 1)
        assert mean_disc == 1.0
        assert mean_cov == 1.0

    def test_all_untransferable_summary_is_zero(self):
        miss = Rule(OrderFeature("X", "Y"), True)
        scores = score_transfer([miss], FAST, SLOW)
        assert discrimination_summary(scores) == (1, 0, 0.0, 0.0)


class TestMatchingModes:
    def test_by_role(self):
        fast = [Schedule([_gpu("Pack_x", 0), _cpu("PostSends_x")])]
        slow = [Schedule([_cpu("PostSends_x"), _gpu("Pack_x", 0)])]
        rule = Rule(OrderFeature("Pack", "PostSends"), True)
        [score] = score_transfer([rule], fast, slow, by_role=True)
        assert score.discrimination == 1.0

    def test_matcher_mode(self):
        class Upper:
            def rule_key(self, name):
                return name.upper()

            def op_key(self, name):
                return name.upper()

        fast = [Schedule([_gpu("a", 0), _gpu("b", 0)])]
        slow = [Schedule([_gpu("b", 0), _gpu("a", 0)])]
        rule = Rule(OrderFeature("A", "B"), True)
        assert score_transfer([rule], fast, slow)[0].discrimination == 0.0
        [score] = score_transfer([rule], fast, slow, matcher=Upper())
        assert score.discrimination == 1.0


class TestScoreObject:
    def test_properties_are_consistent(self):
        s = DiscriminationScore(
            rule=GOOD_RULE,
            n_fast_transferred=4,
            n_fast_satisfied=3,
            n_slow_transferred=5,
            n_slow_satisfied=1,
            n_total=10,
        )
        assert s.fast_satisfaction == 0.75
        assert s.slow_satisfaction == 0.2
        assert abs(s.discrimination - 0.55) < 1e-12
        assert s.coverage == 0.9
        assert abs(s.weight - 0.55 * 0.9) < 1e-12
