"""Tests for the leave-one-workload-out transfer matrix
(repro.transfer.matrix), end-to-end on tiny exhaustible workloads."""

import json

import pytest

from repro.rules.score import rule_satisfied
from repro.sim.measure import MeasurementConfig
from repro.transfer.matrix import (
    run_transfer_matrix,
    transfer_matrix_from,
    vacuous_control_rule,
)
from repro.transfer.signature import SignatureMatcher, program_signatures
from repro.workloads import WorkloadSpec, rules_for_specs

#: Tiny exhaustible spaces; stencil_reduce/wavefront share structure, so
#: the matrix has structurally matching and non-matching pairs.
SPECS = [
    WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
    WorkloadSpec("tree_allreduce", {"rounds": 1, "elems": 16384}),
    WorkloadSpec("wavefront", {"width": 2, "height": 2}),
    WorkloadSpec("stencil_reduce", {"width": 2, "height": 2}),
]

MEASUREMENT = MeasurementConfig(max_samples=1)


@pytest.fixture(scope="module")
def per_workload():
    return rules_for_specs(SPECS, measurement=MEASUREMENT)


@pytest.fixture(scope="module")
def matrix(per_workload):
    return transfer_matrix_from(per_workload)


class TestMatrixShape:
    def test_all_ordered_pairs(self, matrix):
        labels = matrix.workloads
        assert len(labels) == len(SPECS)
        expected = {(a, b) for a in labels for b in labels if a != b}
        assert set(matrix.cells) == expected

    def test_rows_sorted_and_json_ready(self, matrix):
        rows = matrix.rows()
        assert rows == sorted(
            rows, key=lambda r: (r["source"], r["target"])
        )
        json.dumps(matrix.to_dict())  # round-trips

    def test_summary_ranges(self, matrix):
        for cell in matrix.cells.values():
            assert 0 <= cell.n_transferable <= cell.n_rules
            assert -1.0 <= cell.mean_discrimination <= 1.0
            assert 0.0 <= cell.mean_coverage <= 1.0

    def test_report_mentions_every_pair_and_controls(self, matrix):
        text = matrix.report()
        assert "transfer matrix" in text
        assert "Injected always-true controls" in text
        for c in matrix.controls:
            assert c.target in text

    def test_needs_two_workloads(self, per_workload):
        with pytest.raises(ValueError, match="at least two"):
            transfer_matrix_from(per_workload[:1])
        with pytest.raises(ValueError, match="at least two"):
            run_transfer_matrix(SPECS[:1])


class TestControls:
    def test_every_workload_has_a_control(self, matrix):
        assert {c.target for c in matrix.controls} == set(matrix.workloads)

    def test_controls_score_exactly_zero(self, matrix):
        for control in matrix.controls:
            assert control.fast_satisfaction == 1.0
            assert control.slow_satisfaction == 1.0
            assert control.discrimination == 0.0

    def test_control_rule_is_always_satisfied(self, per_workload):
        for wl in per_workload:
            sigs = program_signatures(wl.program)
            rule = vacuous_control_rule(wl, sigs)
            assert rule is not None
            matcher = SignatureMatcher(sigs, sigs)
            for schedule in wl.fast_schedules + wl.slow_schedules:
                assert (
                    rule_satisfied(rule, schedule, matcher=matcher) is True
                )


class TestUnionRows:
    def test_leave_one_out_row_per_workload(self, matrix):
        targets = {u.target for u in matrix.union_rows}
        skipped = set(matrix.workloads) - targets
        # Every workload is either evaluated or explicitly noted.
        for label in skipped:
            assert label in matrix.union_note
        for u in matrix.union_rows:
            assert len(u.trained_on) == len(SPECS) - 1
            assert u.target not in u.trained_on
            assert 0.0 <= u.holdout_accuracy <= 1.0
            assert u.n_features > 0

    def test_too_few_workloads_skips_union(self, per_workload):
        small = transfer_matrix_from(per_workload[:2])
        assert small.union_rows == []
        assert "at least" in small.union_note


def _no_timing(result):
    d = result.to_dict()
    d.pop("timing")
    return d


class TestDeterminism:
    def test_matrix_is_deterministic(self, per_workload, matrix):
        again = transfer_matrix_from(per_workload)
        assert again.to_dict() == matrix.to_dict()

    def test_end_to_end_matches_precomputed(self, matrix):
        direct = run_transfer_matrix(SPECS, measurement=MEASUREMENT)
        assert _no_timing(direct) == _no_timing(matrix)

    def test_sharded_matches_serial_modulo_timing(self, matrix):
        sharded = run_transfer_matrix(
            SPECS, measurement=MEASUREMENT, shard_workers=2
        )
        assert sharded.timing["shard_workers"] == 2
        assert _no_timing(sharded) == _no_timing(matrix)


class TestAdvisories:
    def test_stencil_to_wavefront_flagged(self, matrix):
        """The ROADMAP's observed negative-transfer cell earns the
        do-not-transfer advisory; the advisory surfaces in rows, dict,
        and the rendered report."""
        advisories = matrix.advisories()
        pairs = {(c.source, c.target) for c in advisories}
        stencil = next(w for w in matrix.workloads if "stencil" in w)
        wave = next(w for w in matrix.workloads if w.startswith("wavefront"))
        assert (stencil, wave) in pairs
        for cell in advisories:
            assert cell.do_not_transfer
            assert cell.n_transferable > 0
            assert cell.mean_discrimination <= -0.10
        rows = matrix.rows()
        flagged = {
            (r["source"], r["target"]) for r in rows if r["do_not_transfer"]
        }
        assert flagged == pairs
        assert {
            (a["source"], a["target"])
            for a in matrix.to_dict()["advisories"]
        } == pairs
        text = matrix.report()
        assert "Do-not-transfer advisories" in text
        assert "avoid" in text
        # ...and in the markdown renderer (all three surfaces agree).
        from repro.report import render_transfer_report

        md = render_transfer_report(matrix)
        assert "Do-not-transfer advisories" in md
        assert "**avoid**" in md

    def test_positive_and_untransferable_cells_not_flagged(self, matrix):
        for cell in matrix.cells.values():
            if cell.n_transferable == 0 or cell.mean_discrimination >= 0:
                assert not cell.do_not_transfer


class TestSuiteIntegration:
    def test_generalization_suite_carries_transfer_tables(self):
        # The built-in generalization suite declares >= 5 workloads and
        # cross-workload rules; its report must include the new tables.
        from repro.workloads import get_suite

        suite = get_suite("generalization")
        assert len(suite.specs) >= 5
        assert suite.cross_workload_rules
