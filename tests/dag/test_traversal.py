"""Tests (incl. property-based) for topological traversal helpers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dag.graph import Graph
from repro.dag.traversal import (
    all_topological_orders,
    count_linear_extensions,
    is_topological_order,
    longest_path_lengths,
    random_topological_order,
)
from repro.dag.vertex import cpu_op


def chain(n: int) -> Graph:
    g = Graph()
    prev = None
    for i in range(n):
        v = cpu_op(f"v{i}")
        g.add_vertex(v)
        if prev is not None:
            g.add_edge(prev, v)
        prev = v
    return g


def antichain(n: int) -> Graph:
    g = Graph()
    for i in range(n):
        g.add_vertex(cpu_op(f"v{i}"))
    return g


@st.composite
def random_dags(draw):
    """Random DAG on up to 7 vertices: edges only i -> j for i < j."""
    n = draw(st.integers(min_value=1, max_value=7))
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                edges.append((f"v{i}", f"v{j}"))
    g = Graph()
    for i in range(n):
        g.add_vertex(cpu_op(f"v{i}"))
    for u, v in edges:
        g.add_edge(u, v)
    return g


class TestCounting:
    def test_chain_has_one_extension(self):
        assert count_linear_extensions(chain(6)) == 1

    def test_antichain_has_factorial_extensions(self):
        assert count_linear_extensions(antichain(5)) == 120

    def test_two_disjoint_chains(self):
        g = chain(3)
        prev = None
        for i in range(3):
            v = cpu_op(f"w{i}")
            g.add_vertex(v)
            if prev is not None:
                g.add_edge(prev, v)
            prev = v
        # interleavings of two length-3 chains: C(6,3) = 20
        assert count_linear_extensions(g) == 20

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_count_matches_enumeration(self, g):
        assert count_linear_extensions(g) == sum(
            1 for _ in all_topological_orders(g)
        )


class TestEnumeration:
    @given(random_dags())
    @settings(max_examples=30, deadline=None)
    def test_all_orders_are_valid_and_distinct(self, g):
        seen = set()
        for order in all_topological_orders(g):
            assert is_topological_order(g, order)
            key = tuple(v.name for v in order)
            assert key not in seen
            seen.add(key)


class TestValidation:
    def test_wrong_length_rejected(self):
        g = chain(3)
        assert not is_topological_order(g, ["v0", "v1"])

    def test_wrong_order_rejected(self):
        g = chain(3)
        assert not is_topological_order(g, ["v1", "v0", "v2"])

    def test_right_order_accepted(self):
        g = chain(3)
        assert is_topological_order(g, ["v0", "v1", "v2"])


class TestRandomOrder:
    @given(random_dags(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_random_order_is_valid(self, g, seed):
        order = random_topological_order(g, np.random.default_rng(seed))
        assert is_topological_order(g, order)

    def test_deterministic_given_seed(self):
        g = antichain(6)
        a = random_topological_order(g, np.random.default_rng(7))
        b = random_topological_order(g, np.random.default_rng(7))
        assert [v.name for v in a] == [v.name for v in b]

    def test_covers_space_eventually(self):
        g = antichain(3)
        rng = np.random.default_rng(0)
        seen = {
            tuple(v.name for v in random_topological_order(g, rng))
            for _ in range(200)
        }
        assert len(seen) == 6


class TestLongestPath:
    def test_chain_depths(self):
        depths = longest_path_lengths(chain(4))
        assert depths == {"v0": 0, "v1": 1, "v2": 2, "v3": 3}

    def test_antichain_depths_zero(self):
        assert set(longest_path_lengths(antichain(3)).values()) == {0}
