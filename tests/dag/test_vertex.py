"""Unit tests for the vertex taxonomy (paper Table II)."""

import pytest

from repro.dag.vertex import (
    END,
    START,
    Action,
    ActionKind,
    OpKind,
    Vertex,
    Work,
    cpu_op,
    gpu_op,
)


class TestOpKind:
    def test_gpu_flag(self):
        assert OpKind.GPU.is_gpu
        assert not OpKind.CPU.is_gpu
        assert not OpKind.EVENT_RECORD.is_gpu

    def test_sync_flags(self):
        assert OpKind.EVENT_RECORD.is_sync
        assert OpKind.EVENT_SYNC.is_sync
        assert OpKind.STREAM_WAIT.is_sync
        assert not OpKind.CPU.is_sync
        assert not OpKind.GPU.is_sync

    def test_values_are_cuda_names(self):
        assert OpKind.EVENT_RECORD.value == "cudaEventRecord"
        assert OpKind.EVENT_SYNC.value == "cudaEventSynchronize"
        assert OpKind.STREAM_WAIT.value == "cudaStreamWaitEvent"


class TestWork:
    def test_bytes_moved(self):
        w = Work(flops=10, bytes_read=100, bytes_written=50)
        assert w.bytes_moved == 150

    def test_scaled(self):
        w = Work(flops=10, bytes_read=4, bytes_written=2).scaled(2.0)
        assert w.flops == 20
        assert w.bytes_read == 8
        assert w.bytes_written == 4

    def test_default_zero(self):
        assert Work().bytes_moved == 0.0
        assert Work().flops == 0.0


class TestVertex:
    def test_cpu_op_constructor(self):
        v = cpu_op("A", duration=1e-6)
        assert v.kind is OpKind.CPU
        assert v.duration == 1e-6

    def test_gpu_op_constructor(self):
        v = gpu_op("K", work=Work(flops=100))
        assert v.kind is OpKind.GPU
        assert v.work.flops == 100

    def test_action_only_on_cpu(self):
        with pytest.raises(ValueError, match="actions are only valid"):
            Vertex(
                name="bad",
                kind=OpKind.GPU,
                action=Action(ActionKind.POST_SENDS, "g"),
            )

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            cpu_op("")

    def test_with_name_preserves_fields(self):
        v = gpu_op("K", work=Work(flops=5), payload="p", reads=("a",))
        w = v.with_name("K2")
        assert w.name == "K2"
        assert w.work == v.work
        assert w.payload == "p"
        assert w.reads == ("a",)

    def test_frozen(self):
        v = cpu_op("A")
        with pytest.raises(Exception):
            v.name = "B"

    def test_equality_by_value(self):
        assert cpu_op("A") == cpu_op("A")
        assert cpu_op("A") != cpu_op("B")
        assert cpu_op("A", duration=1.0) != cpu_op("A")

    def test_start_end_sentinels(self):
        assert START.kind is OpKind.START
        assert END.kind is OpKind.END
        assert START.name == "start"
        assert END.name == "end"

    def test_str_is_name(self):
        assert str(cpu_op("Pack")) == "Pack"
