"""Round-trip tests for program serialization."""

from repro.dag.graph import Graph
from repro.dag.program import CommPlan, Message, Program
from repro.dag.serialize import (
    graph_from_dict,
    graph_to_dict,
    program_from_json,
    program_to_json,
    vertex_from_dict,
    vertex_to_dict,
)
from repro.dag.vertex import Action, ActionKind, Work, cpu_op, gpu_op


def test_vertex_roundtrip():
    v = gpu_op(
        "k",
        work=Work(flops=3, bytes_read=5, bytes_written=7),
        payload="p",
        reads=("a", "b"),
        writes=("c",),
    )
    assert vertex_from_dict(vertex_to_dict(v)) == v


def test_vertex_with_action_roundtrip():
    v = cpu_op("post", action=Action(ActionKind.POST_RECVS, "halo"))
    assert vertex_from_dict(vertex_to_dict(v)) == v


def test_graph_roundtrip():
    g = Graph.from_edges(
        [cpu_op("a"), gpu_op("b"), cpu_op("c")],
        [("a", "b"), ("a", "c")],
    )
    g2 = graph_from_dict(graph_to_dict(g))
    assert set(g2.vertex_names) == set(g.vertex_names)
    assert sorted((u.name, v.name) for u, v in g2.edges()) == sorted(
        (u.name, v.name) for u, v in g.edges()
    )


def test_program_roundtrip_drops_payloads_keeps_structure():
    g = Graph()
    g.add_edge(
        cpu_op("post", action=Action(ActionKind.POST_SENDS, "g")),
        cpu_op("wait", action=Action(ActionKind.WAIT_SENDS, "g")),
    )
    p = Program(
        graph=g.with_start_end(),
        n_ranks=2,
        comm={
            "g": CommPlan(
                group="g",
                messages=(
                    Message(
                        src=0, dst=1, nbytes=64.0, tag=9,
                        src_buf="s", dst_buf="d", hazard_buf="h",
                    ),
                ),
            )
        },
        work_overrides={("post", 1): Work(flops=2.0)},
        name="demo",
    )
    q = program_from_json(program_to_json(p))
    assert q.name == "demo"
    assert q.n_ranks == 2
    msg = q.comm_plan("g").messages[0]
    assert (msg.src, msg.dst, msg.nbytes, msg.tag) == (0, 1, 64.0, 9)
    assert msg.hazard_buf == "h"
    assert q.work_for("post", 1).flops == 2.0
    assert set(q.graph.vertex_names) == set(p.graph.vertex_names)
