"""Unit tests for Program / CommPlan / Message."""

import pytest

from repro.dag.graph import Graph
from repro.dag.program import CommPlan, Message, Program
from repro.dag.vertex import Action, ActionKind, Work, cpu_op, gpu_op
from repro.errors import GraphError


def make_graph():
    g = Graph()
    g.add_edge(cpu_op("post", action=Action(ActionKind.POST_SENDS, "g")),
               cpu_op("wait", action=Action(ActionKind.WAIT_SENDS, "g")))
    return g.with_start_end()


def make_plan():
    return CommPlan(
        group="g",
        messages=(
            Message(src=0, dst=1, nbytes=100.0, tag=3),
            Message(src=1, dst=0, nbytes=200.0, tag=3),
        ),
    )


class TestMessage:
    def test_self_message_rejected(self):
        with pytest.raises(ValueError, match="self-messages"):
            Message(src=1, dst=1, nbytes=8.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Message(src=0, dst=1, nbytes=-1.0)


class TestCommPlan:
    def test_sends_recvs_partition(self):
        plan = make_plan()
        assert [m.dst for m in plan.sends_from(0)] == [1]
        assert [m.src for m in plan.recvs_to(0)] == [1]
        assert plan.n_messages == 2
        assert plan.total_bytes() == 300.0


class TestProgram:
    def test_valid_program(self):
        p = Program(graph=make_graph(), n_ranks=2, comm={"g": make_plan()})
        assert p.n_ranks == 2
        assert p.comm_plan("g").n_messages == 2

    def test_unknown_comm_group_rejected(self):
        with pytest.raises(GraphError, match="unknown comm group"):
            Program(graph=make_graph(), n_ranks=2, comm={})

    def test_wait_without_post_rejected(self):
        g = Graph()
        g.add_vertex(cpu_op("wait", action=Action(ActionKind.WAIT_RECVS, "g")))
        g2 = g.with_start_end()
        with pytest.raises(GraphError, match="never posted"):
            Program(graph=g2, n_ranks=2, comm={"g": make_plan()})

    def test_bad_rank_count(self):
        with pytest.raises(ValueError, match="n_ranks"):
            Program(graph=make_graph(), n_ranks=0, comm={"g": make_plan()})

    def test_work_override(self):
        g = Graph()
        k = gpu_op("k", work=Work(flops=10))
        g.add_vertex(k)
        p = Program(
            graph=g.with_start_end(),
            n_ranks=2,
            work_overrides={("k", 1): Work(flops=99)},
        )
        assert p.work_for("k", 0).flops == 10
        assert p.work_for("k", 1).flops == 99

    def test_unknown_payload_rejected_at_lookup(self):
        g = Graph()
        k = gpu_op("k", payload="missing")
        g.add_vertex(k)
        p = Program(graph=g.with_start_end(), n_ranks=1)
        with pytest.raises(GraphError, match="unknown payload"):
            p.payload_fn(k)

    def test_schedulable_excludes_start_end(self):
        p = Program(graph=make_graph(), n_ranks=2, comm={"g": make_plan()})
        names = [v.name for v in p.schedulable_vertices()]
        assert "start" not in names and "end" not in names
        assert set(names) == {"post", "wait"}
