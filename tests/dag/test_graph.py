"""Unit tests for the DAG structure."""

import pytest

from repro.dag.graph import Graph
from repro.dag.vertex import END, START, cpu_op, gpu_op
from repro.errors import CycleError, GraphError


def diamond() -> Graph:
    """a -> {b, c} -> d"""
    g = Graph()
    a, b, c, d = cpu_op("a"), gpu_op("b"), cpu_op("c"), cpu_op("d")
    g.add_edge(a, b)
    g.add_edge(a, c)
    g.add_edge(b, d)
    g.add_edge(c, d)
    return g


class TestConstruction:
    def test_add_vertex_idempotent(self):
        g = Graph()
        v = cpu_op("a")
        g.add_vertex(v)
        g.add_vertex(v)
        assert len(g) == 1

    def test_add_conflicting_vertex_rejected(self):
        g = Graph()
        g.add_vertex(cpu_op("a"))
        with pytest.raises(GraphError, match="different attributes"):
            g.add_vertex(cpu_op("a", duration=1.0))

    def test_self_edge_rejected(self):
        g = Graph()
        with pytest.raises(GraphError, match="self-edge"):
            g.add_edge(cpu_op("a"), "a")

    def test_edge_by_name_requires_existing(self):
        g = Graph()
        g.add_vertex(cpu_op("a"))
        with pytest.raises(GraphError, match="unknown vertex"):
            g.add_edge("a", "missing")

    def test_from_edges(self):
        g = Graph.from_edges(
            [cpu_op("a"), cpu_op("b")], [("a", "b")]
        )
        assert g.n_edges() == 1


class TestQueries:
    def test_contains(self):
        g = diamond()
        assert "a" in g
        assert cpu_op("a") in g
        assert "zzz" not in g

    def test_preds_succs_sorted(self):
        g = diamond()
        assert [v.name for v in g.successors("a")] == ["b", "c"]
        assert [v.name for v in g.predecessors("d")] == ["b", "c"]

    def test_sources_sinks(self):
        g = diamond()
        assert [v.name for v in g.sources()] == ["a"]
        assert [v.name for v in g.sinks()] == ["d"]

    def test_gpu_vertices(self):
        g = diamond()
        assert [v.name for v in g.gpu_vertices()] == ["b"]

    def test_edges_iteration(self):
        g = diamond()
        assert sorted((u.name, v.name) for u, v in g.edges()) == [
            ("a", "b"),
            ("a", "c"),
            ("b", "d"),
            ("c", "d"),
        ]

    def test_vertex_lookup_failure(self):
        with pytest.raises(GraphError):
            diamond().vertex("nope")


class TestTopology:
    def test_topological_order_valid(self):
        g = diamond()
        order = [v.name for v in g.topological_order()]
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_detected(self):
        g = Graph()
        g.add_edge(cpu_op("a"), cpu_op("b"))
        g.add_edge("b", "a")
        with pytest.raises(CycleError):
            g.topological_order()

    def test_transitive_closure(self):
        g = diamond()
        clo = g.transitive_closure()
        assert clo["a"] == {"b", "c", "d"}
        assert clo["d"] == set()

    def test_ancestors_descendants(self):
        g = diamond()
        assert g.ancestors("d") == {"a", "b", "c"}
        assert g.descendants("a") == {"b", "c", "d"}


class TestStartEnd:
    def test_with_start_end_structure(self):
        g = diamond().with_start_end()
        assert START.name in g
        assert END.name in g
        assert [v.name for v in g.successors("start")] == ["a"]
        assert [v.name for v in g.predecessors("end")] == ["d"]

    def test_with_start_end_idempotent(self):
        g = diamond().with_start_end()
        g2 = g.with_start_end()
        assert len(g2) == len(g)
        assert g2.n_edges() == g.n_edges()

    def test_validate_detects_unreachable(self):
        g = diamond().with_start_end()
        # An orphan vertex breaks both reachability requirements.
        g.add_vertex(cpu_op("orphan"))
        with pytest.raises(GraphError, match="unreachable from start"):
            g.validate()

    def test_validate_detects_cannot_reach_end(self):
        g = diamond().with_start_end()
        g.add_vertex(cpu_op("tail"))
        g.add_edge("start", "tail")
        with pytest.raises(GraphError, match="cannot reach end"):
            g.validate()


class TestInterop:
    def test_copy_is_independent(self):
        g = diamond()
        h = g.copy()
        h.add_edge(cpu_op("e"), "a")
        assert "e" not in g

    def test_to_networkx(self):
        nxg = diamond().to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 4
        assert nxg.nodes["b"]["vertex"].kind.is_gpu

    def test_to_dot_contains_all_vertices(self):
        dot = diamond().to_dot()
        for name in ("a", "b", "c", "d"):
            assert f'"{name}"' in dot
        assert "digraph" in dot
