"""Artifact store round-trips, validation, and version error paths."""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.advisor import (
    ARTIFACT_VERSION,
    ArtifactStore,
    ScoredRule,
    artifact_from_dict,
)
from repro.errors import ArtifactError
from repro.ml.features import OrderFeature
from repro.rules.ruleset import Rule
from repro.sim.measure import MeasurementConfig
from repro.workloads import Suite, SuiteRunner, WorkloadSpec

MACHINE_NAME = "perlmutter-like"
MEASUREMENT = MeasurementConfig(max_samples=1)


@pytest.fixture(scope="module")
def store(trained_store):
    return trained_store


def _workload_keys(store):
    return [k for k in store.keys() if k.startswith("workload-")]


def _union_keys(store):
    return [k for k in store.keys() if k.startswith("union-")]


class TestRoundTrip:
    def test_store_holds_every_artifact(self, store, trained_workloads):
        assert len(_workload_keys(store)) == len(trained_workloads)
        assert len(_union_keys(store)) == 1

    def test_workload_round_trip_is_exact(self, store):
        for key in _workload_keys(store):
            artifact = store.load(key)
            again = artifact_from_dict(
                json.loads(
                    json.dumps(artifact.to_dict(), sort_keys=True)
                )
            )
            assert again.to_dict() == artifact.to_dict()
            assert again.signatures == artifact.signatures
            assert again.rules == artifact.rules
            assert again.spec == artifact.spec

    def test_union_round_trip_preserves_predictions(self, store):
        union = store.load_union()
        assert union is not None
        again = artifact_from_dict(union.to_dict())
        assert again.features == union.features
        assert again.workloads == union.workloads
        assert again.advisories == union.advisories
        # The rebuilt tree classifies identically on every binary input
        # pattern of a few probe rows.
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, size=(64, len(union.features)))
        assert (again.tree.predict(x) == union.tree.predict(x)).all()

    def test_republish_overwrites_in_place(self, store, trained_workloads):
        from repro.advisor import workload_artifact

        n = len(store)
        artifact = workload_artifact(
            trained_workloads[0], machine=MACHINE_NAME
        )
        store.publish(artifact)
        assert len(store) == n

    def test_file_is_key_sorted_json(self, store):
        key = _workload_keys(store)[0]
        with open(store.path_of(key), "r", encoding="utf-8") as fh:
            text = fh.read()
        data = json.loads(text)
        assert text == json.dumps(data, indent=2, sort_keys=True) + "\n"

    def test_load_round_trip_bit_stable_across_processes(self, store):
        """A fresh process loads an artifact and re-serializes it to the
        exact bytes on disk — nothing drifts through the round trip."""
        key = _workload_keys(store)[0]
        path = store.path_of(key)
        script = (
            "import json, sys\n"
            "from repro.advisor import artifact_from_dict\n"
            "data = json.load(open(sys.argv[1]))\n"
            "artifact = artifact_from_dict(data)\n"
            "sys.stdout.write(json.dumps(artifact.to_dict(), indent=2, "
            "sort_keys=True) + '\\n')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, path],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        with open(path, "r", encoding="utf-8") as fh:
            assert out == fh.read()


class TestValidation:
    def _tampered(self, store, key, mutate, tmp_path, name):
        with open(store.path_of(key), "r", encoding="utf-8") as fh:
            data = json.load(fh)
        mutate(data)
        bad = ArtifactStore(str(tmp_path / name))
        bad_key = "workload-tampered"
        import os

        os.makedirs(bad.root, exist_ok=True)
        with open(bad.path_of(bad_key), "w", encoding="utf-8") as fh:
            json.dump(data, fh)
        return bad, bad_key

    def test_stale_fingerprint_rejected(self, store, tmp_path):
        key = _workload_keys(store)[0]
        bad, bad_key = self._tampered(
            store,
            key,
            lambda d: d.update(program_fingerprint="0" * 64),
            tmp_path,
            "stale",
        )
        with pytest.raises(ArtifactError, match="stale artifact"):
            bad.load(bad_key)
        # ... but an explicitly trusting load still works.
        assert bad.load(bad_key, validate=False).program_fingerprint == "0" * 64

    def test_changed_spec_rejected_as_stale(self, store, tmp_path):
        """The generator moved on (different params): the rebuilt program
        no longer matches the stored fingerprint."""
        key = next(
            k for k in _workload_keys(store) if "wavefront" in store.load(k).label
        )
        bad, bad_key = self._tampered(
            store,
            key,
            lambda d: d["spec"]["params"].update(width=3),
            tmp_path,
            "spec",
        )
        with pytest.raises(ArtifactError, match="stale"):
            bad.load(bad_key)

    def test_tampered_signature_table_rejected(self, store, tmp_path):
        key = _workload_keys(store)[0]

        def corrupt(d):
            name = sorted(d["signatures"])[0]
            d["signatures"][name]["device"] = "tpu"

        bad, bad_key = self._tampered(store, key, corrupt, tmp_path, "sig")
        with pytest.raises(ArtifactError, match="signature"):
            bad.load(bad_key)

    def test_version_mismatch_rejected(self, store, tmp_path):
        key = _workload_keys(store)[0]
        bad, bad_key = self._tampered(
            store,
            key,
            lambda d: d.update(version=ARTIFACT_VERSION + 1),
            tmp_path,
            "version",
        )
        with pytest.raises(ArtifactError, match="version"):
            bad.load(bad_key)

    def test_missing_artifact_rejected(self, store):
        with pytest.raises(ArtifactError, match="no artifact"):
            store.load("workload-doesnotexist")

    def test_malformed_json_rejected(self, tmp_path):
        import os

        root = tmp_path / "broken"
        os.makedirs(root)
        (root / "workload-x.json").write_text("{not json")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            ArtifactStore(str(root)).load("workload-x")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ArtifactError, match="unknown artifact kind"):
            artifact_from_dict({"version": ARTIFACT_VERSION, "kind": "blob"})


class TestScoredRule:
    def test_weight_is_discrimination_times_coverage(self):
        rule = Rule(OrderFeature("a", "b"), True)
        scored = ScoredRule(rule=rule, discrimination=0.5, coverage=0.4)
        assert scored.weight == pytest.approx(0.2)
        assert ScoredRule.from_dict(scored.to_dict()) == scored


class TestSuiteAutoPublish:
    SPECS = (
        WorkloadSpec("wavefront", {"width": 2, "height": 2}),
        WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
    )

    def test_cross_workload_suite_publishes(self, tmp_path):
        suite = Suite(
            name="tiny-rules",
            description="",
            specs=self.SPECS,
            strategies=("random",),
            n_iterations=4,
            measurement=MEASUREMENT,
            cross_workload_rules=True,
        )
        store_dir = tmp_path / "suite-store"
        report = SuiteRunner(suite, store_path=str(store_dir)).run()
        assert len(report.published) >= len(self.SPECS)
        store = ArtifactStore(str(store_dir))
        loaded = store.load_workloads()
        assert {a.label for a in loaded} == {s.label for s in self.SPECS}
        assert "published" in report.to_json().lower() or report.published
        assert "advisor artifacts" in report.ascii_table()

    def test_sampling_suite_notes_skip(self, tmp_path):
        suite = Suite(
            name="tiny",
            description="",
            specs=self.SPECS,
            strategies=("random",),
            n_iterations=4,
            measurement=MEASUREMENT,
        )
        report = SuiteRunner(
            suite, store_path=str(tmp_path / "nope")
        ).run()
        assert report.published == []
        assert "not updated" in report.store_note
        assert report.store_note in report.ascii_table()


class TestUnionArtifactShape:
    def test_extractor_rebuild_matches_features(self, store):
        union = store.load_union()
        ex = union.extractor()
        assert list(ex.features) == list(union.features)
        assert ex.keys == tuple(union.keys)

    def test_advisories_present_for_training_set(self, store):
        """The training set contains the known stencil→wavefront
        negative-transfer edge; it must survive the store round trip."""
        union = store.load_union()
        pairs = {(src, dst) for src, dst, _ in union.advisories}
        assert any(
            "stencil" in src and dst.startswith("wavefront")
            for src, dst in pairs
        )
