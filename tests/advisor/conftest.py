"""Shared advisor fixtures: one trained artifact store for the package.

Training runs the exhaustive rule pipelines on seven small workloads
(the generalization six plus ``layered_random``) once per session; every
advisor test — store round-trips, guided search, recommendation —
consumes the same artifacts, exactly as a real deployment shares one
store across consumers.
"""

from __future__ import annotations

import pytest

from repro.advisor import ArtifactStore, publish_artifacts
from repro.platform import noiseless, perlmutter_like
from repro.sim.measure import MeasurementConfig
from repro.workloads import WorkloadSpec
from repro.workloads.generalization import rules_for_specs

#: Exhaustible training workloads: every family the advisor tests
#: recommend for or guide on has a structural relative in here.
TRAIN_SPECS = (
    WorkloadSpec("spmv", {"scale": 0.025}),
    WorkloadSpec(
        "halo3d",
        {"nx": 32, "ny": 32, "nz": 32, "px": 2, "py": 2, "pz": 1, "axes": "x"},
    ),
    WorkloadSpec("layered_random", {"layers": 3, "width": 2, "edge_p": 0.5}),
    WorkloadSpec("tree_allreduce", {"rounds": 1, "elems": 16384}),
    WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
    WorkloadSpec("wavefront", {"width": 2, "height": 2}),
    WorkloadSpec("stencil_reduce", {"width": 2, "height": 2}),
)

MEASUREMENT = MeasurementConfig(max_samples=1)

MACHINE_NAME = "perlmutter-like"


@pytest.fixture(scope="session")
def advisor_machine():
    """Noiseless machine used for all advisor-test simulation."""
    return noiseless(perlmutter_like())


@pytest.fixture(scope="session")
def trained_workloads():
    """Per-workload pipeline outputs over the training specs."""
    return rules_for_specs(list(TRAIN_SPECS), measurement=MEASUREMENT)


@pytest.fixture(scope="session")
def trained_store(tmp_path_factory, trained_workloads):
    """An artifact store holding the trained workloads + union tree."""
    root = tmp_path_factory.mktemp("advisor-store")
    store = ArtifactStore(str(root))
    publish_artifacts(store, trained_workloads, machine=MACHINE_NAME)
    return store
