"""Rule-guided search: guide semantics + the pinned pruning regression."""

import numpy as np
import pytest

from repro.advisor import ScheduleGuide
from repro.advisor.guided import ResolvedRule
from repro.schedule.space import DesignSpace
from repro.search.beam import BeamSearch
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.mcts import MctsConfig, MctsSearch
from repro.search.random_search import RandomSearch
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, MeasurementConfig
from repro.workloads import WorkloadSpec, build_workload

MEASUREMENT = MeasurementConfig(max_samples=1)
MACHINE_NAME = "perlmutter-like"

#: The generalization suite's largest design space (1600 schedules).
HALO = WorkloadSpec(
    "halo3d",
    {"nx": 32, "ny": 32, "nz": 32, "px": 2, "py": 2, "pz": 1, "axes": "x"},
)


@pytest.fixture(scope="module")
def halo_program():
    return build_workload(HALO)


@pytest.fixture(scope="module")
def halo_space(halo_program):
    return DesignSpace(halo_program, n_streams=2)


@pytest.fixture(scope="module")
def halo_guide(trained_store, halo_program):
    return ScheduleGuide.from_store(
        trained_store, halo_program, machine=MACHINE_NAME
    )


def _benchmarker(program, advisor_machine):
    machine = advisor_machine.with_ranks(program.n_ranks)
    return Benchmarker(ScheduleExecutor(program, machine), MEASUREMENT)


@pytest.fixture(scope="module")
def halo_unguided(halo_space, halo_program, advisor_machine):
    return ExhaustiveSearch(
        halo_space, _benchmarker(halo_program, advisor_machine)
    ).run()


class TestGuideSemantics:
    def test_rules_resolved_and_ordered(self, halo_guide):
        assert halo_guide.n_rules > 0
        weights = [r.weight for r in halo_guide.rules]
        assert weights == sorted(weights, reverse=True)
        # The strongest rule comes from halo3d's own training run and
        # orders the unpack kernel before the send wait.
        strongest = halo_guide.rules[0]
        assert strongest.weight >= halo_guide.prune_threshold
        assert any("halo3d" in s for s in strongest.sources)

    def test_admits_agrees_with_rule_evaluation(self, halo_guide, halo_space):
        """A schedule is rejected iff it violates a prune-strength rule;
        prefix penalty on the full sequence agrees."""
        prune = halo_guide.prune_rules()
        assert prune
        schedules = list(halo_space.enumerate_schedules())[:200]
        rejected = [s for s in schedules if not halo_guide.admits(s)]
        assert rejected  # the filter does something on this space
        for s in schedules:
            violated = any(
                halo_guide._violated(r, *halo_guide._groups(s.ops)) is True
                for r in prune
            )
            assert halo_guide.admits(s) == (not violated)

    def test_score_bounds_and_determinism(self, halo_guide, halo_space):
        schedules = list(halo_space.enumerate_schedules())[:50]
        scores = [halo_guide.score(s) for s in schedules]
        assert all(-1.0 <= sc <= 1.0 for sc in scores)
        assert scores == [halo_guide.score(s) for s in schedules]
        assert len(set(np.round(scores, 12))) > 1  # rules discriminate

    def test_prefix_penalty_monotone_along_schedule(
        self, halo_guide, halo_space
    ):
        rng = np.random.default_rng(7)
        for _ in range(5):
            schedule = halo_space.random_schedule(rng)
            last = 0.0
            for k in range(len(schedule.ops) + 1):
                penalty = halo_guide.prefix_penalty(schedule.ops[:k])
                assert penalty >= last - 1e-12
                last = penalty

    def test_empty_guide_admits_everything(self, halo_space):
        guide = ScheduleGuide([], {})
        schedule = next(iter(halo_space.enumerate_schedules()))
        assert guide.admits(schedule)
        assert guide.score(schedule) == 0.0
        assert guide.prefix_penalty(schedule.ops) == 0.0

    def test_resolution_excludes_sources(self, trained_store, halo_program):
        all_labels = {
            a.label for a in trained_store.load_workloads(validate=False)
        }
        guide = ScheduleGuide.from_store(
            trained_store,
            halo_program,
            machine=MACHINE_NAME,
            exclude_sources=tuple(all_labels),
        )
        assert guide.n_rules == 0

    def test_resolved_rule_text(self):
        rule = ResolvedRule(
            kind="order", u="a", v="b", value=True, weight=0.5
        )
        assert rule.text == "a before b"
        assert (
            ResolvedRule(
                kind="stream", u="a", v="b", value=False, weight=0.5
            ).text
            == "a different stream than b"
        )


class TestIterBlocksKeep:
    def test_filtered_blocks_match_filtered_enumeration(
        self, halo_space, halo_guide
    ):
        kept = [
            s
            for s in halo_space.enumerate_schedules()
            if halo_guide.admits(s)
        ]
        blocks = list(halo_space.iter_blocks(64, keep=halo_guide.admits))
        streamed = [s for b in blocks for s in b.schedules]
        assert streamed == kept
        skipped = sum(b.n_skipped for b in blocks)
        assert skipped + len(streamed) == halo_space.count()

    def test_cursor_resume_with_keep(self, halo_space, halo_guide):
        blocks = halo_space.iter_blocks(50, keep=halo_guide.admits)
        first = next(blocks)
        resumed = list(
            halo_space.iter_blocks(
                50, cursor=first.cursor, keep=halo_guide.admits
            )
        )
        full = list(halo_space.iter_blocks(50, keep=halo_guide.admits))
        assert [s for b in resumed for s in b.schedules] == [
            s for b in full[1:] for s in b.schedules
        ]


class TestGuidedExhaustiveRegression:
    """The PR's headline acceptance: guided exhaustive search on the
    generalization suite's largest space (halo3d, 1600 schedules) finds
    a schedule within 1% of the unguided best while evaluating at most
    half the schedules.  Everything is seed-fixed and deterministic, so
    this pins the guided-search contract."""

    def test_guided_evaluates_at_most_half(
        self, halo_space, halo_program, halo_guide, halo_unguided, advisor_machine
    ):
        guided = ExhaustiveSearch(
            halo_space,
            _benchmarker(halo_program, advisor_machine),
            guide=halo_guide,
        ).run()
        total = halo_unguided.n_iterations
        assert total == halo_space.count() == 1600
        # Branch-and-bound: cut subtrees' schedules are never enumerated,
        # so evaluated + individually-pruned is a *strict* undercount.
        assert guided.n_subtrees_cut > 0
        assert guided.n_iterations + guided.n_pruned < total
        assert guided.n_iterations <= 0.5 * total
        best_guided = guided.best().time
        best_unguided = halo_unguided.best().time
        assert best_guided <= 1.01 * best_unguided
        # With the current training set the guide keeps the true best.
        assert best_guided == best_unguided

    def test_branch_and_bound_matches_block_filter(
        self, halo_space, halo_program, halo_guide, advisor_machine
    ):
        """B&B and the PR-5 block filter keep the exact same samples in
        the same order — cutting a subtree loses nothing `admits` would
        have kept.  The cut count is deterministic, so it's pinned: 232
        subtrees covering 1600 - (304 + 172) = 1124 never-built leaves."""
        bb = ExhaustiveSearch(
            halo_space,
            _benchmarker(halo_program, advisor_machine),
            guide=halo_guide,
        ).run()
        filtered = ExhaustiveSearch(
            halo_space,
            _benchmarker(halo_program, advisor_machine),
            guide=halo_guide,
            branch_and_bound=False,
        ).run()
        assert filtered.n_subtrees_cut == 0
        assert filtered.n_iterations + filtered.n_pruned == 1600
        assert [(s.schedule, s.time) for s in bb.samples] == [
            (s.schedule, s.time) for s in filtered.samples
        ]
        assert (bb.n_iterations, bb.n_pruned, bb.n_subtrees_cut) == (
            304,
            172,
            232,
        )

    def test_guided_results_are_a_subsequence(
        self, halo_space, halo_program, halo_guide, halo_unguided, advisor_machine
    ):
        guided = ExhaustiveSearch(
            halo_space,
            _benchmarker(halo_program, advisor_machine),
            guide=halo_guide,
        ).run()
        unguided_times = {
            s.schedule: s.time for s in halo_unguided.samples
        }
        for sample in guided.samples:
            assert unguided_times[sample.schedule] == sample.time


class TestGuidedSamplingStrategies:
    def test_guided_random_prunes_and_admits(
        self, halo_space, halo_program, halo_guide, advisor_machine
    ):
        result = RandomSearch(
            halo_space,
            _benchmarker(halo_program, advisor_machine),
            seed=3,
            guide=halo_guide,
        ).run(24)
        # Rejection sampling is bounded by the strategy's attempt cap, so
        # a heavily-pruned space may come up short of the full budget.
        assert 0 < result.n_iterations <= 24
        # Most rollouts die early (abandoned the moment a prefix violates
        # a prune rule) or are rejected once complete.
        assert result.n_subtrees_cut + result.n_pruned > 0
        assert result.n_subtrees_cut > 0  # early abandon actually fires
        for sample in result.samples:
            assert halo_guide.admits(sample.schedule)

    def test_guided_mcts_valid_and_deterministic(
        self, halo_space, halo_program, halo_guide, advisor_machine
    ):
        def run():
            return MctsSearch(
                halo_space,
                _benchmarker(halo_program, advisor_machine),
                MctsConfig(seed=5),
                guide=halo_guide,
            ).run(16)

        a, b = run(), run()
        assert a.n_iterations == 16
        assert [s.time for s in a.samples] == [s.time for s in b.samples]
        for sample in a.samples:
            halo_space.validate_schedule(sample.schedule)

    def test_guided_mcts_rollouts_respect_strong_rules(
        self, halo_space, halo_program, halo_guide, advisor_machine
    ):
        """Biased rollouts steer completions toward rule satisfaction:
        over matched seeds, guided MCTS lands on rule-admitted schedules
        strictly more often than the uniform-rollout baseline.  (Not
        every guided sample is admitted — tree expansion still explores
        one unbiased action per iteration, by design.)"""

        def admitted_count(guide):
            n = 0
            for seed in range(4):
                result = MctsSearch(
                    halo_space,
                    _benchmarker(halo_program, advisor_machine),
                    MctsConfig(seed=seed),
                    guide=guide,
                ).run(12)
                n += sum(
                    1
                    for s in result.samples
                    if halo_guide.admits(s.schedule)
                )
            return n

        assert admitted_count(halo_guide) > admitted_count(None)

    def test_guided_beam_valid_and_deterministic(
        self, halo_space, halo_program, halo_guide, advisor_machine
    ):
        def run():
            return BeamSearch(
                halo_space,
                _benchmarker(halo_program, advisor_machine),
                width=4,
                seed=2,
                guide=halo_guide,
            ).run(32)

        a, b = run(), run()
        assert len(a.samples) == len(b.samples) > 0
        assert [s.time for s in a.samples] == [s.time for s in b.samples]
        for sample in a.samples:
            halo_space.validate_schedule(sample.schedule)

    def test_unguided_paths_unchanged(
        self, halo_space, halo_program, advisor_machine
    ):
        """guide=None must reproduce the historical behavior exactly."""
        a = RandomSearch(
            halo_space,
            _benchmarker(halo_program, advisor_machine),
            seed=11,
        ).run(12)
        b = RandomSearch(
            halo_space,
            _benchmarker(halo_program, advisor_machine),
            seed=11,
            guide=None,
        ).run(12)
        assert [s.time for s in a.samples] == [s.time for s in b.samples]
        assert a.n_pruned == b.n_pruned == 0
