"""Recommendation for unseen programs: quality, determinism, refusals."""

import json

import numpy as np
import pytest

from repro.advisor import (
    STATUS_EMPTY_STORE,
    STATUS_NO_MATCH,
    STATUS_OK,
    STATUS_VACUOUS,
    ArtifactStore,
    ScoredRule,
    WorkloadArtifact,
    recommend,
)
from repro.ml.features import OrderFeature
from repro.rules.ruleset import Rule
from repro.schedule.space import DesignSpace
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, MeasurementConfig
from repro.transfer.signature import OpSignature, program_signatures
from repro.workloads import WorkloadSpec, build_workload

MEASUREMENT = MeasurementConfig(max_samples=1)
MACHINE_NAME = "perlmutter-like"

#: Held out from training: same family as one training workload but a
#: different DAG (edge probability and generator seed differ), so the
#: concrete program was never searched.
HELD_OUT = WorkloadSpec(
    "layered_random", {"layers": 3, "width": 2, "edge_p": 0.7}, seed=5
)


@pytest.fixture(scope="module")
def held_program():
    return build_workload(HELD_OUT)


@pytest.fixture(scope="module")
def held_recommendation(held_program, trained_store):
    return recommend(held_program, trained_store, machine=MACHINE_NAME)


class TestHeldOutQuality:
    def test_recommends_with_confidence(self, held_recommendation):
        rec = held_recommendation
        assert rec.status == STATUS_OK
        assert rec.recommended
        assert rec.schedule is not None
        assert rec.confidence > 0.5
        assert rec.n_rules > 0
        assert rec.sources  # at least one artifact contributed

    def test_beats_space_median(
        self, held_recommendation, held_program, advisor_machine
    ):
        """The PR's acceptance bar: the advised schedule's simulated cost
        beats the median of the full (never-searched) design space."""
        space = DesignSpace(held_program, n_streams=2)
        machine = advisor_machine.with_ranks(held_program.n_ranks)
        bench = Benchmarker(
            ScheduleExecutor(held_program, machine), MEASUREMENT
        )
        times = np.array(
            [bench.measure(s).time for s in space.enumerate_schedules()]
        )
        advised = bench.measure(held_recommendation.schedule).time
        assert advised < float(np.median(times))

    def test_schedule_is_valid_member_of_space(
        self, held_recommendation, held_program
    ):
        space = DesignSpace(held_program, n_streams=2)
        space.validate_schedule(held_recommendation.schedule)

    def test_honors_do_not_transfer_advisories(self, held_recommendation):
        """The training matrix flags stencil_reduce/wavefront guidance as
        anti-predictive for layered_random's nearest structure; those
        sources must be excluded from the rule pool."""
        excluded = set(held_recommendation.excluded_sources)
        assert any("stencil" in label for label in excluded)
        assert all(
            label not in excluded for label in held_recommendation.sources
        )

    def test_deterministic(self, held_program, trained_store, held_recommendation):
        again = recommend(held_program, trained_store, machine=MACHINE_NAME)
        assert (
            again.schedule.fingerprint()
            == held_recommendation.schedule.fingerprint()
        )
        assert again.to_dict() == held_recommendation.to_dict()

    def test_to_dict_json_ready(self, held_recommendation):
        payload = json.dumps(held_recommendation.to_dict(), sort_keys=True)
        data = json.loads(payload)
        assert data["status"] == STATUS_OK
        assert len(data["schedule"]) == len(held_recommendation.schedule)

    def test_large_space_samples_candidates(
        self, held_program, trained_store
    ):
        rec = recommend(
            held_program,
            trained_store,
            machine=MACHINE_NAME,
            max_candidates=100,
        )
        assert rec.status == STATUS_OK
        assert rec.n_candidates == 100


# ----------------------------------------------------------------------
def _artifact_for(program, spec, rules, signatures=None):
    """Hand-built artifact (bypasses training) for degenerate tests."""
    from repro.exec.cache import program_fingerprint

    return WorkloadArtifact(
        label=spec.label,
        spec=spec,
        machine=MACHINE_NAME,
        n_streams=2,
        program_fingerprint=program_fingerprint(program),
        signatures=(
            signatures
            if signatures is not None
            else program_signatures(program)
        ),
        rules=rules,
        n_schedules=4,
    )


class TestDegenerateInputs:
    """Each degenerate input yields an explicit refusal with
    ``schedule=None`` and zero confidence — never a silent arbitrary
    schedule."""

    def test_empty_store(self, tmp_path, held_program):
        rec = recommend(held_program, ArtifactStore(str(tmp_path / "empty")))
        assert rec.status == STATUS_EMPTY_STORE
        assert rec.schedule is None
        assert rec.confidence == 0.0
        assert not rec.recommended

    def test_no_signature_match(self, held_program):
        """An artifact whose signatures exist nowhere in the target (and
        whose rules mention an op with no signature at all) resolves
        zero rules."""
        spec = WorkloadSpec("wavefront", {"width": 2, "height": 2})
        program = build_workload(spec)
        alien = {
            "X": OpSignature(
                device="gpu", action="kernel", topology="irregular", arity=9
            )
        }
        artifact = _artifact_for(
            program,
            spec,
            rules=[
                ScoredRule(
                    rule=Rule(OrderFeature("X", "Y"), True),
                    discrimination=1.0,
                    coverage=1.0,
                )
            ],
            signatures=alien,
        )
        rec = recommend(held_program, [artifact])
        assert rec.status == STATUS_NO_MATCH
        assert rec.schedule is None
        assert rec.confidence == 0.0

    def test_all_rules_vacuous(self, held_program):
        """Rules that structurally match but carry zero discrimination
        must be refused, not used as arbitrary tie-break noise."""
        signatures = program_signatures(held_program)
        first = sorted(signatures)[0]
        other = next(
            name
            for name in sorted(signatures)
            if signatures[name].key != signatures[first].key
        )
        artifact = _artifact_for(
            held_program,
            HELD_OUT,
            rules=[
                ScoredRule(
                    rule=Rule(OrderFeature(first, other), True),
                    discrimination=0.0,
                    coverage=1.0,
                )
            ],
        )
        rec = recommend(held_program, [artifact])
        assert rec.status == STATUS_VACUOUS
        assert rec.schedule is None
        assert rec.confidence == 0.0
        assert rec.n_rules > 0  # matched, but uninformative

    def test_machine_filter_excludes_foreign_platform(
        self, held_program, trained_store
    ):
        rec = recommend(held_program, trained_store, machine="other-machine")
        assert rec.status == STATUS_EMPTY_STORE
        assert rec.schedule is None
