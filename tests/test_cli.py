"""CLI smoke tests (small scale to stay fast)."""

import pytest

from repro.cli import main


def test_platform_command(capsys):
    assert main(["platform"]) == 0
    out = capsys.readouterr().out
    assert "Ranks" in out


def test_fig1_small_scale(capsys):
    assert main(["fig1", "--scale", "0.025"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "sorted fastest to slowest" in out


def test_fig4_small_scale(capsys):
    assert main(["fig4", "--scale", "0.025"]) == 0
    assert "classes" in capsys.readouterr().out


def test_fig5_small_scale(capsys):
    assert main(["fig5", "--scale", "0.025"]) == 0
    assert "Algorithm 1" in capsys.readouterr().out


def test_fig6_small_scale(capsys):
    assert main(["fig6", "--scale", "0.025"]) == 0
    assert "6-leaf tree" in capsys.readouterr().out


def test_table5_small_scale(capsys):
    assert main(["table5", "--scale", "0.025"]) == 0
    out = capsys.readouterr().out
    assert "accuracy=1.000" in out  # full budget classifies perfectly


def test_multi_input_small_scale(capsys):
    assert main(["multi-input", "--scale", "0.0125"]) == 0
    out = capsys.readouterr().out
    assert "Cross-input design rules" in out
    assert "bw=n/4" in out and "bw=n/8" in out


def test_fig4_with_workers_matches_serial(capsys):
    """--workers shards evaluation but must not change any output."""
    assert main(["fig4", "--scale", "0.025"]) == 0
    serial_out = capsys.readouterr().out
    assert main(["fig4", "--scale", "0.025", "--workers", "2"]) == 0
    assert capsys.readouterr().out == serial_out


def test_fig4_with_cache(tmp_path, capsys):
    from repro.experiments import default_workbench

    cache = str(tmp_path / "measurements.sqlite")
    assert main(["fig4", "--scale", "0.025", "--cache", cache]) == 0
    first = capsys.readouterr().out
    # Drop the memoized workbench so the second run must read the
    # measurements back from the SQLite cache (cold in-process state).
    default_workbench.cache_clear()
    assert main(["fig4", "--scale", "0.025", "--cache", cache]) == 0
    assert capsys.readouterr().out == first


def test_bad_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])


def test_list_enumerates_experiments_workloads_suites(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment in ("fig1", "table5", "multi-input", "all"):
        assert experiment in out
    for family in (
        "spmv",
        "halo3d",
        "layered_random",
        "fork_join",
        "tree_allreduce",
        "wavefront",
        "stencil_reduce",
    ):
        assert family in out
    for suite in ("smoke", "paper", "generalization"):
        assert suite in out


def test_suite_smoke_writes_json_report(tmp_path, capsys):
    import json

    path = tmp_path / "smoke.json"
    md_path = tmp_path / "smoke.md"
    assert (
        main(
            ["suite", "smoke", "--json", str(path), "--report", str(md_path)]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Suite 'smoke'" in out
    assert str(path) in out
    data = json.loads(path.read_text())
    workloads = {c["workload"] for c in data["cells"]}
    strategies = {c["strategy"] for c in data["cells"]}
    # >= 6 workloads (2 adapted apps + 4 synthetic families), one JSON
    # row per (workload, strategy) cell
    assert len(workloads) >= 6
    assert len(data["cells"]) == len(workloads) * len(strategies)
    # markdown report surfaces the per-stage wall times the JSON always
    # carried (previously dropped by rendering)
    md = md_path.read_text()
    assert "# Suite report" in md
    assert "## Timing" in md
    assert "search:random" in md


def test_suite_json_to_stdout(capsys):
    assert main(["suite", "smoke", "--json", "-"]) == 0
    out = capsys.readouterr().out
    assert '"suite": "smoke"' in out


def test_suite_unknown_name_raises():
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError, match="unknown suite"):
        main(["suite", "not-a-suite"])


@pytest.mark.slow
def test_transfer_smoke_writes_reports(tmp_path, capsys):
    """The acceptance path: `repro transfer` over the >= 5-workload
    generalization suite with per-target zero-discrimination controls
    and union-tree held-out accuracy."""
    import json

    json_path = tmp_path / "transfer.json"
    md_path = tmp_path / "transfer.md"
    assert (
        main(
            [
                "transfer",
                "--smoke",
                "--json",
                str(json_path),
                "--report",
                str(md_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "transfer matrix" in out
    assert "Injected always-true controls" in out

    data = json.loads(json_path.read_text())
    assert len(data["workloads"]) >= 5
    assert len(data["matrix"]) == len(data["workloads"]) * (
        len(data["workloads"]) - 1
    )
    # every target's injected always-true rule scores 0 discrimination
    assert {c["target"] for c in data["controls"]} == set(data["workloads"])
    for control in data["controls"]:
        assert control["discrimination"] == 0.0
    # union tree reports held-out-workload accuracy per target
    assert {u["target"] for u in data["union"]} == set(data["workloads"])
    for row in data["union"]:
        assert 0.0 <= row["holdout_accuracy"] <= 1.0

    md = md_path.read_text()
    assert "# Cross-program transfer report" in md
    assert "Union-trained tree" in md
    # per-stage wall times surface in the rendered report too
    assert "## Timing" in md
    assert "label+train" in md


def test_transfer_unknown_suite_raises():
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError, match="unknown suite"):
        main(["transfer", "--suite", "not-a-suite"])


def test_public_api_importable():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None


# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_store(tmp_path_factory):
    """A small trained artifact store for advise/search CLI tests."""
    from repro.advisor import ArtifactStore, publish_artifacts
    from repro.sim.measure import MeasurementConfig
    from repro.workloads import WorkloadSpec, rules_for_specs

    specs = [
        WorkloadSpec("wavefront", {"width": 2, "height": 2}),
        WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
        WorkloadSpec("tree_allreduce", {"rounds": 1, "elems": 16384}),
    ]
    per = rules_for_specs(
        specs, measurement=MeasurementConfig(max_samples=1)
    )
    root = tmp_path_factory.mktemp("cli-store")
    store = ArtifactStore(str(root))
    publish_artifacts(store, per, machine="perlmutter-like")
    return str(root)


def test_advise_empty_store_refuses(tmp_path, capsys):
    assert (
        main(
            [
                "advise",
                "--family",
                "wavefront",
                "--param",
                "width=3",
                "--param",
                "height=2",
                "--store",
                str(tmp_path / "nothing"),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "status:     empty-store" in out
    assert "confidence: 0.000" in out


def test_advise_from_store_writes_json(tiny_store, tmp_path, capsys):
    import json

    json_path = tmp_path / "advise.json"
    assert (
        main(
            [
                "advise",
                "--family",
                "wavefront",
                "--param",
                "width=3",
                "--param",
                "height=2",
                "--store",
                tiny_store,
                "--json",
                str(json_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "advise wavefront[height=2,width=3,seed=0]" in out
    data = json.loads(json_path.read_text())
    assert data["status"] in ("ok", "no-signature-match", "vacuous-rules")
    if data["status"] == "ok":
        assert data["schedule"]
        assert data["confidence"] > 0


def test_advise_requires_family_without_smoke():
    with pytest.raises(SystemExit, match="--family"):
        main(["advise", "--store", "unused"])


def test_search_guided_exhaustive(tiny_store, capsys):
    assert (
        main(
            [
                "search",
                "--family",
                "wavefront",
                "--param",
                "width=2",
                "--param",
                "height=2",
                "--guided",
                "--store",
                tiny_store,
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "resolved rules" in out
    assert "exhaustive (guided)" in out
    assert "best time" in out


def test_search_unguided_sampling(capsys):
    assert (
        main(
            [
                "search",
                "--family",
                "wavefront",
                "--param",
                "width=2",
                "--param",
                "height=2",
                "--strategy",
                "random",
                "--iterations",
                "8",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "random on wavefront" in out
    assert "evaluated 8 schedules" in out


def test_search_requires_family():
    with pytest.raises(SystemExit, match="--family"):
        main(["search"])


def test_bad_param_rejected():
    with pytest.raises(SystemExit, match="k=v"):
        main(
            [
                "search",
                "--family",
                "wavefront",
                "--param",
                "width",
            ]
        )
