"""CLI smoke tests (small scale to stay fast)."""

import pytest

from repro.cli import main


def test_platform_command(capsys):
    assert main(["platform"]) == 0
    out = capsys.readouterr().out
    assert "Ranks" in out


def test_fig1_small_scale(capsys):
    assert main(["fig1", "--scale", "0.025"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "sorted fastest to slowest" in out


def test_fig4_small_scale(capsys):
    assert main(["fig4", "--scale", "0.025"]) == 0
    assert "classes" in capsys.readouterr().out


def test_fig5_small_scale(capsys):
    assert main(["fig5", "--scale", "0.025"]) == 0
    assert "Algorithm 1" in capsys.readouterr().out


def test_fig6_small_scale(capsys):
    assert main(["fig6", "--scale", "0.025"]) == 0
    assert "6-leaf tree" in capsys.readouterr().out


def test_table5_small_scale(capsys):
    assert main(["table5", "--scale", "0.025"]) == 0
    out = capsys.readouterr().out
    assert "accuracy=1.000" in out  # full budget classifies perfectly


def test_multi_input_small_scale(capsys):
    assert main(["multi-input", "--scale", "0.0125"]) == 0
    out = capsys.readouterr().out
    assert "Cross-input design rules" in out
    assert "bw=n/4" in out and "bw=n/8" in out


def test_fig4_with_workers_matches_serial(capsys):
    """--workers shards evaluation but must not change any output."""
    assert main(["fig4", "--scale", "0.025"]) == 0
    serial_out = capsys.readouterr().out
    assert main(["fig4", "--scale", "0.025", "--workers", "2"]) == 0
    assert capsys.readouterr().out == serial_out


def test_fig4_with_cache(tmp_path, capsys):
    from repro.experiments import default_workbench

    cache = str(tmp_path / "measurements.sqlite")
    assert main(["fig4", "--scale", "0.025", "--cache", cache]) == 0
    first = capsys.readouterr().out
    # Drop the memoized workbench so the second run must read the
    # measurements back from the SQLite cache (cold in-process state).
    default_workbench.cache_clear()
    assert main(["fig4", "--scale", "0.025", "--cache", cache]) == 0
    assert capsys.readouterr().out == first


def test_bad_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])


def test_list_enumerates_experiments_workloads_suites(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment in ("fig1", "table5", "multi-input", "all"):
        assert experiment in out
    for family in (
        "spmv",
        "halo3d",
        "layered_random",
        "fork_join",
        "tree_allreduce",
        "wavefront",
        "stencil_reduce",
    ):
        assert family in out
    for suite in ("smoke", "paper", "generalization"):
        assert suite in out


def test_suite_smoke_writes_json_report(tmp_path, capsys):
    import json

    path = tmp_path / "smoke.json"
    assert main(["suite", "smoke", "--json", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Suite 'smoke'" in out
    assert str(path) in out
    data = json.loads(path.read_text())
    workloads = {c["workload"] for c in data["cells"]}
    strategies = {c["strategy"] for c in data["cells"]}
    # >= 6 workloads (2 adapted apps + 4 synthetic families), one JSON
    # row per (workload, strategy) cell
    assert len(workloads) >= 6
    assert len(data["cells"]) == len(workloads) * len(strategies)


def test_suite_json_to_stdout(capsys):
    assert main(["suite", "smoke", "--json", "-"]) == 0
    out = capsys.readouterr().out
    assert '"suite": "smoke"' in out


def test_suite_unknown_name_raises():
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError, match="unknown suite"):
        main(["suite", "not-a-suite"])


@pytest.mark.slow
def test_transfer_smoke_writes_reports(tmp_path, capsys):
    """The acceptance path: `repro transfer` over the >= 5-workload
    generalization suite with per-target zero-discrimination controls
    and union-tree held-out accuracy."""
    import json

    json_path = tmp_path / "transfer.json"
    md_path = tmp_path / "transfer.md"
    assert (
        main(
            [
                "transfer",
                "--smoke",
                "--json",
                str(json_path),
                "--report",
                str(md_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "transfer matrix" in out
    assert "Injected always-true controls" in out

    data = json.loads(json_path.read_text())
    assert len(data["workloads"]) >= 5
    assert len(data["matrix"]) == len(data["workloads"]) * (
        len(data["workloads"]) - 1
    )
    # every target's injected always-true rule scores 0 discrimination
    assert {c["target"] for c in data["controls"]} == set(data["workloads"])
    for control in data["controls"]:
        assert control["discrimination"] == 0.0
    # union tree reports held-out-workload accuracy per target
    assert {u["target"] for u in data["union"]} == set(data["workloads"])
    for row in data["union"]:
        assert 0.0 <= row["holdout_accuracy"] <= 1.0

    md = md_path.read_text()
    assert "# Cross-program transfer report" in md
    assert "Union-trained tree" in md


def test_transfer_unknown_suite_raises():
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError, match="unknown suite"):
        main(["transfer", "--suite", "not-a-suite"])


def test_public_api_importable():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None
