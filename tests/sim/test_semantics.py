"""Tests for numeric payloads and hazard tracking."""

import numpy as np
import pytest

from repro.errors import HazardError
from repro.sim.semantics import HazardTracker, PayloadContext


class TestHazardTracker:
    def test_read_after_write_clean(self):
        h = HazardTracker()
        h.mark_ready(0, "buf", 1.0)
        h.check_read(0, "op", "buf", 2.0)
        assert h.clean

    def test_read_before_write_is_hazard(self):
        h = HazardTracker()
        h.mark_ready(0, "buf", 5.0)
        h.check_read(0, "op", "buf", 2.0)
        assert not h.clean
        assert h.hazards[0].buffer == "buf"

    def test_read_of_unwritten_is_hazard(self):
        h = HazardTracker()
        h.check_read(1, "op", "never", 0.0)
        assert not h.clean
        assert "never" in str(h.hazards[0])

    def test_strict_mode_raises(self):
        h = HazardTracker(strict=True)
        with pytest.raises(HazardError):
            h.check_read(0, "op", "buf", 0.0)

    def test_per_rank_namespaces(self):
        h = HazardTracker()
        h.mark_ready(0, "buf", 0.0)
        h.check_read(1, "op", "buf", 1.0)  # rank 1 never wrote it
        assert not h.clean


class TestPayloadContext:
    def test_transfer_copies_arrays(self):
        ctx = PayloadContext(2)
        src = np.arange(4.0)
        ctx[0].buffers["out"] = src
        ctx.transfer(0, 1, "out", "in")
        src[:] = -1  # mutate after transfer; receiver must be unaffected
        assert np.array_equal(ctx[1].buffers["in"], np.arange(4.0))

    def test_transfer_missing_source_is_noop(self):
        ctx = PayloadContext(2)
        ctx.transfer(0, 1, "missing", "in")
        assert "in" not in ctx[1].buffers

    def test_rank_context_fields(self):
        ctx = PayloadContext(3)
        assert [rc.rank for rc in ctx.ranks] == [0, 1, 2]
        assert ctx[1].n_ranks == 3


class TestExecutorHazardIntegration:
    def test_spmv_schedules_are_hazard_free(
        self, spmv_instance, machine, spmv_schedules
    ):
        from repro.sim import ScheduleExecutor

        ex = ScheduleExecutor(
            spmv_instance.program, machine, payload_init=spmv_instance.payload_init
        )
        for s in spmv_schedules[::97]:
            assert ex.run(s).hazard_free
