"""Tests for the paper's measurement protocol."""

import pytest

from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, MeasurementConfig


class TestConfigValidation:
    def test_bad_sample_bounds(self):
        with pytest.raises(ValueError):
            MeasurementConfig(min_samples=0)
        with pytest.raises(ValueError):
            MeasurementConfig(min_samples=3, max_samples=2)


class TestBenchmarker:
    def test_noiseless_single_sample(self, spmv_executor, spmv_schedules):
        bench = Benchmarker(spmv_executor, MeasurementConfig(max_samples=5))
        m = bench.measure(spmv_schedules[0])
        assert m.n_samples == 1  # deterministic: shortcut after min_samples
        assert m.time > 0
        assert m.time == max(m.per_rank_time)

    def test_cache_hit(self, spmv_executor, spmv_schedules):
        bench = Benchmarker(spmv_executor, MeasurementConfig(max_samples=1))
        bench.measure(spmv_schedules[0])
        sims = bench.n_simulations
        bench.measure(spmv_schedules[0])
        assert bench.n_simulations == sims
        assert bench.n_unique_schedules == 1

    def test_noisy_uses_multiple_samples(
        self, spmv_instance, noisy_machine, spmv_schedules
    ):
        ex = ScheduleExecutor(spmv_instance.program, noisy_machine)
        bench = Benchmarker(ex, MeasurementConfig(max_samples=4, min_samples=2))
        m = bench.measure(spmv_schedules[0])
        assert 2 <= m.n_samples <= 4

    def test_noise_averaging_reduces_variance(
        self, spmv_instance, noisy_machine, spmv_schedules
    ):
        """Mean over samples must lie between per-sample extremes."""
        ex = ScheduleExecutor(spmv_instance.program, noisy_machine)
        singles = [
            ex.run(spmv_schedules[0], sample=i).elapsed for i in range(4)
        ]
        bench = Benchmarker(ex, MeasurementConfig(max_samples=4, min_samples=4))
        m = bench.measure(spmv_schedules[0])
        assert min(singles) <= m.time <= max(singles)

    def test_target_time_stops_sampling(self, spmv_instance, noisy_machine, spmv_schedules):
        ex = ScheduleExecutor(spmv_instance.program, noisy_machine)
        # Tiny target: one sample (~tens of us) exceeds it immediately.
        bench = Benchmarker(
            ex,
            MeasurementConfig(
                target_time_s=1e-9, max_samples=10, min_samples=1
            ),
        )
        assert bench.measure(spmv_schedules[0]).n_samples == 1

    def test_time_of_equals_measure(self, spmv_benchmarker, spmv_schedules):
        s = spmv_schedules[1]
        assert spmv_benchmarker.time_of(s) == spmv_benchmarker.measure(s).time
