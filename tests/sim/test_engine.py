"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Channel, Environment


class TestEventBasics:
    def test_succeed_once(self):
        env = Environment()
        e = env.event("x")
        e.succeed(41)
        assert e.triggered
        assert e.value == 41
        with pytest.raises(SimulationError, match="twice"):
            e.succeed()

    def test_callback_after_trigger_fires_immediately(self):
        env = Environment()
        e = env.event()
        e.succeed(5)
        seen = []
        e.add_callback(lambda evt: seen.append(evt.value))
        assert seen == [5]


class TestTimeout:
    def test_advances_clock(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(1.5)
            log.append(env.now)
            yield env.timeout(0.5)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [1.5, 2.0]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_tie_break_is_fifo(self):
        env = Environment()
        order = []

        def mk(name):
            def proc():
                yield env.timeout(1.0)
                order.append(name)
            return proc

        for name in "abc":
            env.process(mk(name)())
        env.run()
        assert order == ["a", "b", "c"]


class TestComposites:
    def test_all_of_waits_for_all(self):
        env = Environment()
        done_at = []

        def proc():
            yield env.all_of([env.timeout(1.0), env.timeout(3.0)])
            done_at.append(env.now)

        env.process(proc())
        env.run()
        assert done_at == [3.0]

    def test_any_of_fires_on_first(self):
        env = Environment()
        done_at = []

        def proc():
            yield env.any_of([env.timeout(1.0), env.timeout(3.0)])
            done_at.append(env.now)

        env.process(proc())
        env.run()
        assert done_at == [1.0]

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        done = []

        def proc():
            yield env.all_of([])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]

    def test_all_of_with_pre_fired_events(self):
        env = Environment()
        e = env.event()
        e.succeed()
        done = []

        def proc():
            yield env.all_of([e, env.timeout(2.0)])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [2.0]


class TestProcesses:
    def test_return_value_on_done(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            return "result"

        p = env.process(proc())
        env.run()
        assert p.done.triggered
        assert p.done.value == "result"

    def test_yielding_non_event_raises(self):
        env = Environment()

        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(SimulationError, match="must yield Event"):
            env.run()

    def test_process_chaining_via_done(self):
        env = Environment()
        log = []

        def worker():
            yield env.timeout(2.0)
            return 7

        def waiter(w):
            value = yield w.done
            log.append((env.now, value))

        w = env.process(worker())
        env.process(waiter(w))
        env.run()
        assert log == [(2.0, 7)]


class TestDeadlock:
    def test_deadlock_detected(self):
        env = Environment()

        def proc():
            yield env.event("never")

        env.process(proc(), name="stuck")
        with pytest.raises(DeadlockError, match="stuck"):
            env.run()

    def test_daemon_may_outlive_queue(self):
        env = Environment()

        def daemon():
            yield env.event("never")

        def worker():
            yield env.timeout(1.0)

        env.process(daemon(), name="d", daemon=True)
        env.process(worker())
        assert env.run() == 1.0

    def test_scheduling_in_past_rejected(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            env.fire_at(0.5)

        env.process(proc())
        with pytest.raises(SimulationError, match="before now"):
            env.run()


class TestChannel:
    def test_serializes_occupations(self):
        env = Environment()
        ch = Channel(env)
        b1, e1 = ch.occupy(0.0, 2.0)
        b2, e2 = ch.occupy(1.0, 2.0)
        assert (b1, e1) == (0.0, 2.0)
        assert (b2, e2) == (2.0, 4.0)

    def test_idle_gap_respected(self):
        env = Environment()
        ch = Channel(env)
        ch.occupy(0.0, 1.0)
        b, e = ch.occupy(5.0, 1.0)
        assert (b, e) == (5.0, 6.0)
