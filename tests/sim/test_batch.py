"""Differential tests for the compiled batch simulation backend.

The contract under test (:mod:`repro.sim.batch`): replayed measurements
are **bit-identical** to the reference discrete-event engine — not close,
equal — for every registered workload family, with and without noise,
and anything the compiled context cannot replay falls back to the
reference engine transparently (counted in ``sim.fallbacks``).
"""

import numpy as np
import pytest

from repro import obs
from repro.dag.vertex import START, OpKind, Vertex, gpu_op
from repro.exec import SerialEvaluator, build_evaluator
from repro.platform import noiseless, perlmutter_like
from repro.schedule.schedule import BoundOp, Schedule
from repro.schedule.space import DesignSpace
from repro.sim.batch import CompiledContext, compile_context, resolve_backend
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, MeasurementConfig
from repro.workloads import build_workload, builtin_suites

#: Every registered workload family, at CI-fast sizes.
SMOKE_SPECS = builtin_suites()["smoke"].specs
#: Families whose programs carry MPI actions (compile-time fallback).
MPI_FAMILIES = {"spmv", "halo3d", "tree_allreduce"}

N_SCHEDULES = 20


def _machines():
    return (
        ("noiseless", noiseless(perlmutter_like())),
        ("noisy", perlmutter_like(noise_sigma=0.01)),
    )


def _random_schedules(program, n, seed=7, n_streams=2):
    space = DesignSpace(program, n_streams=n_streams)
    rng = np.random.default_rng(seed)
    out = []
    while len(out) < n:
        s = space.random_schedule(rng)
        if s is not None:
            out.append(s)
    return out


def _reference(program, machine, cfg, schedules):
    bench = Benchmarker(ScheduleExecutor(program, machine), cfg)
    return [bench.measure(s) for s in schedules]


# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", SMOKE_SPECS, ids=lambda s: s.label)
@pytest.mark.parametrize("noise", ["noiseless", "noisy"])
def test_bit_identical_to_reference_every_family(spec, noise):
    """Replay == reference, float for float, across all families."""
    program = build_workload(spec)
    machine = dict(_machines())[noise].with_ranks(program.n_ranks)
    cfg = MeasurementConfig(max_samples=3)
    ctx = CompiledContext(program, machine, cfg)
    if spec.family in MPI_FAMILIES:
        assert not ctx.ok and ctx.reason == "mpi-comm"
        return
    assert ctx.ok, ctx.reason
    schedules = _random_schedules(program, N_SCHEDULES)
    assert all(ctx.supports(s) for s in schedules)
    ref = _reference(program, machine, cfg, schedules)
    got = ctx.measure_block(schedules)
    for a, b in zip(got, ref):
        assert a == b  # bit-identical: time, n_samples, per_rank_time


def test_bit_identical_under_adaptive_sampling():
    """The target-time break conditions fire identically to reference."""
    spec = next(s for s in SMOKE_SPECS if s.family == "wavefront")
    program = build_workload(spec)
    machine = perlmutter_like(noise_sigma=0.01).with_ranks(program.n_ranks)
    # A target small enough that some schedules stop before max_samples.
    cfg = MeasurementConfig(target_time_s=1e-5, min_samples=2, max_samples=6)
    ctx = CompiledContext(program, machine, cfg)
    assert ctx.ok
    schedules = _random_schedules(program, N_SCHEDULES)
    ref = _reference(program, machine, cfg, schedules)
    got = ctx.measure_block(schedules)
    assert {m.n_samples for m in ref} != {cfg.max_samples}
    for a, b in zip(got, ref):
        assert a == b


def test_measure_into_counts_and_seeds_memo():
    spec = next(s for s in SMOKE_SPECS if s.family == "fork_join")
    program = build_workload(spec)
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    cfg = MeasurementConfig(max_samples=2)
    ctx = CompiledContext(program, machine, cfg)
    bench = Benchmarker(ScheduleExecutor(program, machine), cfg)
    schedules = _random_schedules(program, 8)
    # Duplicate the batch: dedup must replay each unique schedule once.
    results, n_replayed, n_fallbacks = ctx.measure_into(
        bench, schedules + schedules, backend="batch"
    )
    unique = len({s.fingerprint() for s in schedules})
    assert n_replayed == unique and n_fallbacks == 0
    assert len(results) == 2 * len(schedules)
    assert results[: len(schedules)] == results[len(schedules) :]
    # n_simulations accounting matches the reference protocol.
    ref_bench = Benchmarker(ScheduleExecutor(program, machine), cfg)
    ref = [ref_bench.measure(s) for s in schedules]
    assert results[: len(schedules)] == ref
    assert bench.n_simulations == ref_bench.n_simulations
    # A second call is fully memoized: nothing replayed, nothing simulated.
    sims = bench.n_simulations
    _, n_replayed, n_fallbacks = ctx.measure_into(
        bench, schedules, backend="batch"
    )
    assert (n_replayed, n_fallbacks) == (0, 0)
    assert bench.n_simulations == sims


# -- fallback paths ----------------------------------------------------
def test_mpi_program_falls_back_to_reference_results():
    spec = next(s for s in SMOKE_SPECS if s.family == "tree_allreduce")
    program = build_workload(spec)
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    cfg = MeasurementConfig(max_samples=1)
    ctx = CompiledContext(program, machine, cfg)
    assert not ctx.ok
    schedules = _random_schedules(program, 4)
    bench = Benchmarker(ScheduleExecutor(program, machine), cfg)
    results, n_replayed, n_fallbacks = ctx.measure_into(
        bench, schedules, backend="batch"
    )
    assert n_replayed == 0
    assert n_fallbacks == len({s.fingerprint() for s in schedules})
    assert results == _reference(program, machine, cfg, schedules)


def test_serial_evaluator_counts_fallbacks():
    """An explicit batch backend on an unsupported program: reference
    results, every schedule counted in ``sim.fallbacks``."""
    spec = next(s for s in SMOKE_SPECS if s.family == "spmv")
    program = build_workload(spec)
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    cfg = MeasurementConfig(max_samples=1)
    schedules = _random_schedules(program, 5)
    bench = Benchmarker(ScheduleExecutor(program, machine), cfg)
    ev = SerialEvaluator(bench, sim_backend="batch")
    assert ev.sim_backend == "batch" and ev._compiled is not None
    before = obs.metrics_snapshot()
    results = ev.evaluate_batch(schedules)
    delta = obs.metrics_snapshot().diff(before)
    assert delta.counter("sim.fallbacks") == len(schedules)
    assert delta.counter("sim.batch_replays") == 0
    assert results == _reference(program, machine, cfg, schedules)


def test_serial_evaluator_counts_replays():
    spec = next(s for s in SMOKE_SPECS if s.family == "layered_random")
    program = build_workload(spec)
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    cfg = MeasurementConfig(max_samples=1)
    schedules = _random_schedules(program, 6)
    bench = Benchmarker(ScheduleExecutor(program, machine), cfg)
    ev = SerialEvaluator(bench, sim_backend="auto")
    assert ev.sim_backend == "batch"
    before = obs.metrics_snapshot()
    results = ev.evaluate_batch(schedules)
    delta = obs.metrics_snapshot().diff(before)
    assert delta.counter("sim.batch_replays") == len(
        {s.fingerprint() for s in schedules}
    )
    assert delta.counter("sim.fallbacks") == 0
    assert results == _reference(program, machine, cfg, schedules)


def test_auto_resolves_to_reference_on_mpi_programs():
    spec = next(s for s in SMOKE_SPECS if s.family == "halo3d")
    program = build_workload(spec)
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    backend, ctx = resolve_backend("auto", program, machine)
    assert backend == "reference" and ctx is None
    backend, ctx = resolve_backend("batch", program, machine)
    assert backend == "batch" and ctx is not None and not ctx.ok
    with pytest.raises(ValueError, match="unknown sim backend"):
        resolve_backend("vectorized", program, machine)


def test_needs_reference_forces_reference_backend():
    spec = next(s for s in SMOKE_SPECS if s.family == "wavefront")
    program = build_workload(spec)
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    backend, ctx = resolve_backend(
        "auto", program, machine, needs_reference=True
    )
    assert backend == "reference" and ctx is None


# -- per-schedule capability guards ------------------------------------
@pytest.fixture(scope="module")
def guard_ctx():
    spec = next(s for s in SMOKE_SPECS if s.family == "layered_random")
    program = build_workload(spec)
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    return program, CompiledContext(program, machine, MeasurementConfig())


def _rec(name, event, stream=0):
    v = Vertex(name=name, kind=OpKind.EVENT_RECORD)
    return BoundOp(v, stream=stream, event=event)


def _wait(name, event, stream=0):
    v = Vertex(name=name, kind=OpKind.STREAM_WAIT)
    return BoundOp(v, stream=stream, event=event)


def _sync(name, event):
    v = Vertex(name=name, kind=OpKind.EVENT_SYNC)
    return BoundOp(v, event=event)


def test_guard_unknown_and_mismatched_ops(guard_ctx):
    program, ctx = guard_ctx
    unknown = Schedule([BoundOp(gpu_op("NOT-IN-PROGRAM"), stream=0)])
    assert ctx.unsupported_reason(unknown) == "unknown-op:NOT-IN-PROGRAM"
    v = next(v for v in program.schedulable_vertices() if v.kind is OpKind.GPU)
    impostor = Vertex(name=v.name, kind=v.kind, duration=123.0)
    mismatched = Schedule([BoundOp(impostor, stream=0)])
    assert ctx.unsupported_reason(mismatched) == f"op-mismatch:{v.name}"


def test_guard_stream_and_kind(guard_ctx):
    program, ctx = guard_ctx
    v = next(v for v in program.schedulable_vertices() if v.kind is OpKind.GPU)
    assert (
        ctx.unsupported_reason(Schedule([BoundOp(v, stream=99)]))
        == "stream-out-of-range:99"
    )
    assert ctx.unsupported_reason(Schedule([BoundOp(START)])) == "op-kind:start"


def test_guard_event_ordering(guard_ctx):
    _, ctx = guard_ctx
    assert (
        ctx.unsupported_reason(Schedule([_wait("W0", "e0", stream=1)]))
        == "event-before-record:e0"
    )
    assert (
        ctx.unsupported_reason(Schedule([_sync("S0", "e0")]))
        == "event-before-record:e0"
    )
    rerecord = Schedule([_rec("R0", "e0"), _rec("R1", "e0", stream=1)])
    assert ctx.unsupported_reason(rerecord) == "event-rerecord:e0"
    ordered = Schedule([_rec("R0", "e0"), _wait("W0", "e0", stream=1)])
    assert ctx.unsupported_reason(ordered) is None


# -- compile instrumentation -------------------------------------------
def test_compile_context_metrics():
    spec = next(s for s in SMOKE_SPECS if s.family == "stencil_reduce")
    program = build_workload(spec)
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    before = obs.metrics_snapshot()
    ctx = compile_context(program, machine)
    delta = obs.metrics_snapshot().diff(before)
    assert ctx.ok
    assert delta.counter("sim.compiled_contexts") == 1
    # The unusable compile is timed but not counted as a usable context.
    mpi = build_workload(next(s for s in SMOKE_SPECS if s.family == "spmv"))
    before = obs.metrics_snapshot()
    ctx = compile_context(
        mpi, noiseless(perlmutter_like()).with_ranks(mpi.n_ranks)
    )
    delta = obs.metrics_snapshot().diff(before)
    assert not ctx.ok
    assert delta.counter("sim.compiled_contexts") == 0


# -- evaluator-level equivalence ---------------------------------------
def test_build_evaluator_batch_vs_reference_serial():
    spec = next(s for s in SMOKE_SPECS if s.family == "fork_join")
    program = build_workload(spec)
    machine = perlmutter_like(noise_sigma=0.01).with_ranks(program.n_ranks)
    cfg = MeasurementConfig(max_samples=2)
    schedules = _random_schedules(program, 25)
    ref_ev = build_evaluator(program, machine, cfg, sim_backend="reference")
    bat_ev = build_evaluator(program, machine, cfg, sim_backend="auto")
    assert bat_ev.sim_backend == "batch"
    try:
        assert bat_ev.evaluate_batch(schedules) == ref_ev.evaluate_batch(
            schedules
        )
        assert bat_ev.n_simulations == ref_ev.n_simulations
    finally:
        ref_ev.close()
        bat_ev.close()
