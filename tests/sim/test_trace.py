"""Tests for trace collection and Gantt rendering."""

import pytest

from repro.sim.trace import Gantt, Trace, TraceRecord


def make_trace():
    t = Trace()
    t.add(0, "cpu", "a", 0.0, 1.0)
    t.add(0, "cpu", "b", 2.0, 3.0)
    t.add(0, "stream0", "k", 0.5, 2.5)
    t.add(1, "cpu", "c", 0.0, 4.0)
    return t


class TestTrace:
    def test_busy_time(self):
        t = make_trace()
        assert t.busy_time(0, "cpu") == pytest.approx(2.0)
        assert t.busy_time(0, "stream0") == pytest.approx(2.0)

    def test_makespan(self):
        assert make_trace().makespan() == 4.0

    def test_for_rank_filters(self):
        t = make_trace()
        assert len(t.for_rank(0)) == 3
        assert len(t.for_rank(1)) == 1

    def test_overlap(self):
        t = make_trace()
        # cpu [0,1]+[2,3] vs stream0 [0.5,2.5] -> 0.5 + 0.5
        assert t.overlap(0, "cpu", "stream0") == pytest.approx(1.0)

    def test_overlap_disjoint(self):
        t = Trace()
        t.add(0, "a", "x", 0.0, 1.0)
        t.add(0, "b", "y", 2.0, 3.0)
        assert t.overlap(0, "a", "b") == 0.0

    def test_record_duration(self):
        r = TraceRecord(0, "cpu", "x", 1.0, 3.5)
        assert r.duration == 2.5


class TestGantt:
    def test_render_contains_lanes_and_legend(self):
        out = Gantt(make_trace(), width=40).render()
        assert "r0/cpu" in out
        assert "r0/stream0" in out
        assert "r1/cpu" in out
        assert "legend:" in out

    def test_render_rank_filter(self):
        out = Gantt(make_trace(), width=40).render(ranks=[1])
        assert "r1/cpu" in out
        assert "r0/cpu" not in out

    def test_empty_trace(self):
        assert "empty" in Gantt(Trace()).render()

    def test_spmv_gantt_smoke(self, spmv_instance, machine, spmv_schedules):
        from repro.sim import ScheduleExecutor

        ex = ScheduleExecutor(
            spmv_instance.program, machine, collect_trace=True
        )
        r = ex.run(spmv_schedules[0])
        out = Gantt(r.trace, width=60).render(ranks=[0])
        assert "r0/cpu" in out and "|" in out
