"""Unit tests for the MPI network engine (matching, protocols, NIC)."""

import pytest

from repro.dag.program import Message
from repro.errors import MpiError
from repro.platform.machine import NetworkModel, Protocol
from repro.platform.noise import NoiseModel
from repro.sim.engine import Environment
from repro.sim.network import Network


def make_net(env, **kwargs):
    defaults = dict(
        latency_s=1.0,
        bandwidth_bytes_per_s=100.0,
        eager_threshold_bytes=10.0,
        protocol=Protocol.RENDEZVOUS,
        serialize_nic=True,
    )
    defaults.update(kwargs)
    return Network(env, NetworkModel(**defaults), NoiseModel())


class TestMatching:
    def test_send_then_recv_completes(self):
        env = Environment()
        net = make_net(env)
        msg = Message(src=0, dst=1, nbytes=100.0)
        s = net.post_send(msg)
        r = net.post_recv(msg)
        env.run()
        assert s.is_complete and r.is_complete
        # rendezvous: starts at both-posted (t=0), wire = 1 + 100/100 = 2.
        assert r.completed_at == pytest.approx(2.0)

    def test_tag_mismatch_no_match(self):
        env = Environment()
        net = make_net(env)
        net.post_send(Message(src=0, dst=1, nbytes=100.0, tag=1))
        net.post_recv(Message(src=0, dst=1, nbytes=100.0, tag=2))
        env.run()
        assert len(net.unmatched()) == 2
        with pytest.raises(MpiError, match="unmatched"):
            net.assert_drained()

    def test_non_overtaking_order(self):
        """Two same-triple messages match in posting order."""
        env = Environment()
        net = make_net(env, serialize_nic=False)
        m1 = Message(src=0, dst=1, nbytes=100.0)
        m2 = Message(src=0, dst=1, nbytes=500.0)
        s1, s2 = net.post_send(m1), net.post_send(m2)
        r1, r2 = net.post_recv(m1), net.post_recv(m2)
        env.run()
        # r1 got the first (small) send: 1 + 1 = 2; r2: 1 + 5 = 6.
        assert r1.completed_at == pytest.approx(2.0)
        assert r2.completed_at == pytest.approx(6.0)


class TestRendezvous:
    def test_late_recv_delays_start(self):
        env = Environment()
        net = make_net(env)
        msg = Message(src=0, dst=1, nbytes=100.0)
        s = net.post_send(msg)

        def poster():
            yield env.timeout(10.0)
            net.post_recv(msg)

        env.process(poster())
        env.run()
        # Transfer starts at recv post (10), wire 2 -> 12.
        assert s.completed_at == pytest.approx(12.0)


class TestEager:
    def test_small_message_send_completes_early(self):
        env = Environment()
        net = make_net(env)
        msg = Message(src=0, dst=1, nbytes=5.0)  # below threshold
        s = net.post_send(msg)

        def poster():
            yield env.timeout(10.0)
            net.post_recv(msg)

        env.process(poster())
        env.run()
        wire = 1.0 + 5.0 / 100.0
        # Send buffered at injection end; recv sees data when posted.
        assert s.completed_at == pytest.approx(wire)

    def test_recv_after_arrival_completes_at_post(self):
        env = Environment()
        net = make_net(env)
        msg = Message(src=0, dst=1, nbytes=5.0)
        net.post_send(msg)
        r = [None]

        def poster():
            yield env.timeout(10.0)
            r[0] = net.post_recv(msg)

        env.process(poster())
        env.run()
        assert r[0].completed_at == pytest.approx(10.0)


class TestNicSerialization:
    def test_outgoing_transfers_serialize(self):
        env = Environment()
        net = make_net(env)
        m1 = Message(src=0, dst=1, nbytes=100.0)
        m2 = Message(src=0, dst=2, nbytes=100.0)
        net.post_recv(m1)
        net.post_recv(m2)
        s1 = net.post_send(m1)
        s2 = net.post_send(m2)
        env.run()
        # Each wire = 2.0; the second occupies the send channel after the first.
        assert s1.completed_at == pytest.approx(2.0)
        assert s2.completed_at == pytest.approx(4.0)

    def test_no_serialization_when_disabled(self):
        env = Environment()
        net = make_net(env, serialize_nic=False)
        m1 = Message(src=0, dst=1, nbytes=100.0)
        m2 = Message(src=0, dst=2, nbytes=100.0)
        net.post_recv(m1)
        net.post_recv(m2)
        s1 = net.post_send(m1)
        s2 = net.post_send(m2)
        env.run()
        assert s1.completed_at == pytest.approx(2.0)
        assert s2.completed_at == pytest.approx(2.0)

    def test_incoming_channel_also_serializes(self):
        env = Environment()
        net = make_net(env)
        m1 = Message(src=0, dst=2, nbytes=100.0)
        m2 = Message(src=1, dst=2, nbytes=100.0)
        r1, r2 = net.post_recv(m1), net.post_recv(m2)
        net.post_send(m1)
        net.post_send(m2)
        env.run()
        assert sorted([r1.completed_at, r2.completed_at]) == pytest.approx(
            [2.0, 4.0]
        )


class TestHooks:
    def test_on_transfer_called_with_interval(self):
        env = Environment()
        calls = []
        net = Network(
            env,
            NetworkModel(
                latency_s=1.0,
                bandwidth_bytes_per_s=100.0,
                eager_threshold_bytes=0.0,
            ),
            NoiseModel(),
            on_transfer=lambda msg, b, e: calls.append((msg.src, b, e)),
        )
        msg = Message(src=0, dst=1, nbytes=100.0)
        net.post_send(msg)
        net.post_recv(msg)
        env.run()
        assert calls == [(0, 0.0, pytest.approx(2.0))]
        assert net.n_transfers == 1
