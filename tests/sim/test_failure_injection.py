"""Failure injection: hand-built invalid schedules must be caught.

The space generator only emits valid schedules; these tests bypass it to
verify the defensive layers — the hazard tracker, schedule validation, and
the executor's action guards — actually fire when given garbage.
"""

import numpy as np
import pytest

from repro.errors import HazardError, ScheduleError
from repro.schedule.schedule import Schedule
from repro.sim import ScheduleExecutor


def reorder_without_sync(schedule):
    """Move PostSends (and its CPU-side syncs) before Pack: the transfer
    then reads the pack buffers before the pack kernel completed."""
    ops = {op.name: op for op in schedule.ops}
    order = [
        "PostRecvs",
        "PostSends",          # posted before Pack even launches!
        "Pack",
        "CER-after-Pack",
        "CES-b4-PostSends",   # syncs after the fact: too late
        "yL",
        "WaitRecv",
        "yR",
        "WaitSend",
    ]
    return Schedule([ops[n] for n in order])


class TestHazardInjection:
    def test_premature_send_detected(self, spmv_instance, machine, spmv_schedules):
        bad = reorder_without_sync(spmv_schedules[0])
        ex = ScheduleExecutor(
            spmv_instance.program,
            machine,
            payload_init=spmv_instance.payload_init,
        )
        result = ex.run(bad)
        assert not result.hazard_free
        hazards = result.payload.hazards.hazards
        assert any(h.buffer == "send_bufs" for h in hazards)

    def test_strict_mode_raises(self, spmv_instance, machine, spmv_schedules):
        bad = reorder_without_sync(spmv_schedules[0])
        ex = ScheduleExecutor(
            spmv_instance.program,
            machine,
            payload_init=spmv_instance.payload_init,
            strict_hazards=True,
        )
        with pytest.raises(HazardError, match="send_bufs"):
            ex.run(bad)

    def test_space_validation_rejects_it(self, spmv_space, spmv_schedules):
        bad = reorder_without_sync(spmv_schedules[0])
        with pytest.raises(ScheduleError):
            spmv_space.validate_schedule(bad)

    def test_valid_schedules_stay_clean(
        self, spmv_instance, machine, spmv_schedules
    ):
        """Control: the same ops in a legal order produce zero hazards."""
        ex = ScheduleExecutor(
            spmv_instance.program,
            machine,
            payload_init=spmv_instance.payload_init,
            strict_hazards=True,
        )
        ref = spmv_instance.reference_result()
        result = ex.run(spmv_schedules[0])
        assert result.hazard_free
        assert np.allclose(spmv_instance.gather_result(result.payload), ref)
