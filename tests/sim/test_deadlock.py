"""Deadlock detection on real SPMD failure modes.

The unsafe SpMV DAG (no posts-before-waits edges) contains schedules in
which every rank blocks in WaitRecv before posting its sends — a true
deadlock on real hardware.  These tests pin down that the simulator
detects it and that the safe DAG excludes it.
"""

import pytest

from repro.apps.spmv import SpmvCase, build_spmv_program
from repro.errors import DeadlockError
from repro.platform import noiseless, perlmutter_like
from repro.schedule import DesignSpace
from repro.sim import ScheduleExecutor


@pytest.fixture(scope="module")
def unsafe_instance():
    return build_spmv_program(SpmvCase().scaled(1 / 80), safe_waits=False)


def test_unsafe_space_is_larger(unsafe_instance, spmv_space):
    unsafe_space = DesignSpace(unsafe_instance.program, n_streams=2)
    assert unsafe_space.count() == 2016   # documented in DESIGN.md
    assert spmv_space.count() == 540


def test_unsafe_space_contains_deadlocking_schedule(unsafe_instance):
    space = DesignSpace(unsafe_instance.program, n_streams=2)
    ex = ScheduleExecutor(unsafe_instance.program, noiseless(perlmutter_like()))
    deadlocks = 0
    for i, s in enumerate(space.enumerate_schedules()):
        names = s.op_names()
        # Only try candidates where a wait precedes the matching posts.
        if names.index("WaitRecv") < names.index("PostSends"):
            with pytest.raises(DeadlockError):
                ex.run(s)
            deadlocks += 1
            if deadlocks >= 3:
                break
    assert deadlocks == 3


def test_safe_space_runs_everywhere(spmv_space, spmv_instance, machine):
    """Every 20th schedule of the safe space simulates without deadlock."""
    ex = ScheduleExecutor(spmv_instance.program, machine)
    scheds = list(spmv_space.enumerate_schedules())
    for s in scheds[::20]:
        result = ex.run(s)
        assert result.elapsed > 0


def test_safe_space_excludes_wait_before_post(spmv_space):
    for s in spmv_space.enumerate_schedules():
        names = s.op_names()
        assert names.index("PostSends") < names.index("WaitRecv")
        assert names.index("PostRecvs") < names.index("WaitSend")
