"""Additional edge-case tests for the simulation kernel."""

from repro.sim.engine import Environment


class TestAnyOfValues:
    def test_first_value_delivered(self):
        env = Environment()
        got = []

        def firer():
            yield env.timeout(1.0)
            e1.succeed("first")
            yield env.timeout(1.0)
            e2.succeed("second")

        def waiter():
            value = yield env.any_of([e1, e2])
            got.append((env.now, value))

        e1 = env.event("e1")
        e2 = env.event("e2")
        env.process(firer())
        env.process(waiter())
        env.run()
        assert got == [(1.0, "first")]

    def test_any_of_empty_fires_now(self):
        env = Environment()
        done = []

        def proc():
            yield env.any_of([])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]


class TestFireAt:
    def test_fires_at_absolute_time(self):
        env = Environment()
        seen = []

        def proc():
            yield env.fire_at(3.5)
            seen.append(env.now)

        env.process(proc())
        env.run()
        assert seen == [3.5]

    def test_run_until_stops_early(self):
        env = Environment()

        def proc():
            yield env.timeout(10.0)

        env.process(proc(), daemon=True)
        assert env.run(until=4.0) == 4.0
        assert env.now == 4.0


class TestNestedProcessResume:
    def test_deep_chain_of_immediate_events(self):
        """A chain of processes resuming each other at the same instant
        must not lose wakeups (regression class of the stream bug)."""
        env = Environment()
        order = []

        def stage(i, trigger, next_trigger):
            yield trigger
            order.append(i)
            if next_trigger is not None:
                next_trigger.succeed()

        events = [env.event(f"e{i}") for i in range(10)]
        for i in range(10):
            nxt = events[i + 1] if i + 1 < 10 else None
            env.process(stage(i, events[i], nxt))
        kick = env.timeout(1.0)
        kick.add_callback(lambda _e: events[0].succeed())
        env.run()
        assert order == list(range(10))

    def test_process_yield_already_triggered_event(self):
        env = Environment()
        pre = env.event("pre")
        pre.succeed(42)
        got = []

        def proc():
            value = yield pre
            got.append((env.now, value))

        env.process(proc())
        env.run()
        assert got == [(0.0, 42)]
