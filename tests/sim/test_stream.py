"""Unit tests for GPU streams and CUDA events."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.stream import CudaEvent, Stream, StreamItem, StreamSet


def run_all(env):
    env.run()


class TestStreamFifo:
    def test_kernels_execute_in_order(self):
        env = Environment()
        s = Stream(env, rank=0, stream_id=0)
        ends = []
        for i, dur in enumerate([1.0, 2.0]):
            s.enqueue(
                StreamItem(
                    kind="kernel",
                    name=f"k{i}",
                    duration=dur,
                    on_complete=lambda st, i=i: ends.append((i, env.now)),
                )
            )
        run_all(env)
        assert ends == [(0, 1.0), (1, 3.0)]

    def test_kernel_enqueued_mid_run(self):
        """Reentrancy regression: enqueue while the stream idles after a
        previous drain must not orphan the queue (the wakeup-clobber bug)."""
        env = Environment()
        s = Stream(env, rank=0, stream_id=0)
        ends = []

        def producer():
            s.enqueue(StreamItem(kind="kernel", name="a", duration=1.0,
                                 on_complete=lambda st: ends.append(env.now)))
            yield env.timeout(5.0)  # stream drains and goes idle
            s.enqueue(StreamItem(kind="kernel", name="b", duration=1.0,
                                 on_complete=lambda st: ends.append(env.now)))

        env.process(producer())
        run_all(env)
        assert ends == [1.0, 6.0]

    def test_record_fires_event_at_queue_position(self):
        env = Environment()
        s = Stream(env, rank=0, stream_id=0)
        evt = CudaEvent(env, "e")
        s.enqueue(StreamItem(kind="kernel", name="k", duration=2.0))
        s.enqueue(StreamItem(kind="record", name="r", event=evt))
        run_all(env)
        assert evt.fired
        assert evt.fired_at == 2.0

    def test_wait_blocks_stream_until_event(self):
        env = Environment()
        a = Stream(env, rank=0, stream_id=0)
        b = Stream(env, rank=0, stream_id=1)
        evt = CudaEvent(env, "cross")
        ends = []
        a.enqueue(StreamItem(kind="kernel", name="ka", duration=3.0))
        a.enqueue(StreamItem(kind="record", name="ra", event=evt))
        b.enqueue(StreamItem(kind="wait", name="wb", event=evt))
        b.enqueue(
            StreamItem(
                kind="kernel",
                name="kb",
                duration=1.0,
                on_complete=lambda st: ends.append(env.now),
            )
        )
        run_all(env)
        assert ends == [4.0]  # waits for ka (3.0) then runs (1.0)

    def test_wait_on_already_fired_event_proceeds(self):
        env = Environment()
        s = Stream(env, rank=0, stream_id=0)
        evt = CudaEvent(env, "pre")
        done = []

        def fire_then_use():
            yield env.timeout(1.0)
            evt.fire(env.now)
            s.enqueue(StreamItem(kind="wait", name="w", event=evt))
            s.enqueue(
                StreamItem(
                    kind="kernel", name="k", duration=1.0,
                    on_complete=lambda st: done.append(env.now),
                )
            )

        env.process(fire_then_use())
        run_all(env)
        assert done == [2.0]


class TestCudaEvent:
    def test_double_record_rejected(self):
        env = Environment()
        evt = CudaEvent(env, "e")
        evt.fire(1.0)
        with pytest.raises(SimulationError, match="twice"):
            evt.fire(2.0)


class TestStreamSet:
    def test_event_namespace_per_rank(self):
        env = Environment()
        ss = StreamSet(env, rank=0, n_streams=2)
        assert ss.cuda_event("x") is ss.cuda_event("x")
        assert ss.cuda_event("x") is not ss.cuda_event("y")

    def test_stream_out_of_range(self):
        env = Environment()
        ss = StreamSet(env, rank=0, n_streams=2)
        with pytest.raises(SimulationError, match="out of range"):
            ss.stream(2)

    def test_device_synchronize_waits_all_streams(self):
        env = Environment()
        ss = StreamSet(env, rank=0, n_streams=2)
        ss.stream(0).enqueue(StreamItem(kind="kernel", name="k0", duration=1.0))
        ss.stream(1).enqueue(StreamItem(kind="kernel", name="k1", duration=4.0))
        done = []

        def cpu():
            yield ss.device_synchronize_event()
            done.append(env.now)

        env.process(cpu())
        run_all(env)
        assert done == [4.0]
