"""Tests for the schedule executor on hand-built miniature programs."""

import pytest

from repro.dag.graph import Graph
from repro.dag.program import CommPlan, Message, Program
from repro.dag.vertex import Action, ActionKind, OpKind, Vertex, cpu_op, gpu_op
from repro.errors import ScheduleError, SimulationError
from repro.platform.machine import CpuModel, GpuModel, MachineConfig, NetworkModel
from repro.platform.noise import NoiseModel
from repro.schedule.schedule import BoundOp, Schedule
from repro.sim.executor import ScheduleExecutor


def quiet_machine(n_ranks=2, n_streams=2):
    """Machine with zero overheads for exact-time assertions."""
    return MachineConfig(
        n_ranks=n_ranks,
        n_streams=n_streams,
        gpu=GpuModel(
            launch_overhead_s=0.0,
            kernel_min_s=0.0,
            event_record_s=0.0,
            event_sync_overhead_s=0.0,
            stream_wait_overhead_s=0.0,
        ),
        cpu=CpuModel(default_op_s=0.0, post_msg_s=0.0, wait_overhead_s=0.0),
        net=NetworkModel(
            latency_s=1.0, bandwidth_bytes_per_s=100.0,
            eager_threshold_bytes=0.0,
        ),
        noise=NoiseModel(),
    )


def sched(*ops):
    return Schedule([op for op in ops])


class TestKernelsAndStreams:
    def test_two_kernels_same_stream_serialize(self):
        k1 = gpu_op("k1", duration=2.0)
        k2 = gpu_op("k2", duration=3.0)
        g = Graph()
        g.add_vertex(k1)
        g.add_vertex(k2)
        p = Program(graph=g.with_start_end(), n_ranks=1)
        ex = ScheduleExecutor(p, quiet_machine(n_ranks=1))
        r = ex.run(sched(BoundOp(k1, stream=0), BoundOp(k2, stream=0)))
        assert r.elapsed == pytest.approx(5.0)

    def test_two_kernels_different_streams_overlap(self):
        k1 = gpu_op("k1", duration=2.0)
        k2 = gpu_op("k2", duration=3.0)
        g = Graph()
        g.add_vertex(k1)
        g.add_vertex(k2)
        p = Program(graph=g.with_start_end(), n_ranks=1)
        ex = ScheduleExecutor(p, quiet_machine(n_ranks=1))
        r = ex.run(sched(BoundOp(k1, stream=0), BoundOp(k2, stream=1)))
        assert r.elapsed == pytest.approx(3.0)

    def test_event_sync_blocks_cpu(self):
        k = gpu_op("k", duration=4.0)
        c = cpu_op("c", duration=1.0)
        g = Graph()
        g.add_edge(k, c)
        p = Program(graph=g.with_start_end(), n_ranks=1)
        ex = ScheduleExecutor(p, quiet_machine(n_ranks=1))
        cer = Vertex(name="rec", kind=OpKind.EVENT_RECORD)
        ces = Vertex(name="syn", kind=OpKind.EVENT_SYNC)
        r = ex.run(
            sched(
                BoundOp(k, stream=0),
                BoundOp(cer, stream=0, event="e"),
                BoundOp(ces, event="e"),
                BoundOp(c),
            )
        )
        # CPU blocks until k (4.0), then c runs (1.0).
        assert r.elapsed == pytest.approx(5.0)

    def test_stream_wait_orders_cross_stream(self):
        k1 = gpu_op("k1", duration=4.0)
        k2 = gpu_op("k2", duration=1.0)
        g = Graph()
        g.add_edge(k1, k2)
        p = Program(graph=g.with_start_end(), n_ranks=1)
        ex = ScheduleExecutor(p, quiet_machine(n_ranks=1))
        cer = Vertex(name="rec", kind=OpKind.EVENT_RECORD)
        csw = Vertex(name="w", kind=OpKind.STREAM_WAIT)
        r = ex.run(
            sched(
                BoundOp(k1, stream=0),
                BoundOp(cer, stream=0, event="e"),
                BoundOp(csw, stream=1, event="e"),
                BoundOp(k2, stream=1),
            )
        )
        assert r.elapsed == pytest.approx(5.0)

    def test_start_end_in_schedule_rejected(self):
        from repro.dag.vertex import START

        g = Graph()
        g.add_vertex(gpu_op("k", duration=1.0))
        p = Program(graph=g.with_start_end(), n_ranks=1)
        ex = ScheduleExecutor(p, quiet_machine(n_ranks=1))
        with pytest.raises(ScheduleError, match="must not appear"):
            ex.run(Schedule([BoundOp(START)]))


def make_comm_program():
    """Each rank sends 100 B to the other; post -> wait."""
    ps = cpu_op("ps", action=Action(ActionKind.POST_SENDS, "g"))
    pr = cpu_op("pr", action=Action(ActionKind.POST_RECVS, "g"))
    ws = cpu_op("ws", action=Action(ActionKind.WAIT_SENDS, "g"))
    wr = cpu_op("wr", action=Action(ActionKind.WAIT_RECVS, "g"))
    g = Graph()
    g.add_edge(ps, ws)
    g.add_edge(pr, wr)
    g.add_edge(ps, wr)
    g.add_edge(pr, ws)
    plan = CommPlan(
        group="g",
        messages=(
            Message(src=0, dst=1, nbytes=100.0),
            Message(src=1, dst=0, nbytes=100.0),
        ),
    )
    p = Program(graph=g.with_start_end(), n_ranks=2, comm={"g": plan})
    return p, (ps, pr, ws, wr)


class TestMpiActions:
    def test_exchange_timing(self):
        p, (ps, pr, ws, wr) = make_comm_program()
        ex = ScheduleExecutor(p, quiet_machine())
        r = ex.run(sched(BoundOp(pr), BoundOp(ps), BoundOp(ws), BoundOp(wr)))
        # wire = 1 + 100/100 = 2.0 on both ranks in parallel.
        assert r.elapsed == pytest.approx(2.0)
        assert r.n_transfers == 2

    def test_rank_count_mismatch_rejected(self):
        p, _ = make_comm_program()
        with pytest.raises(SimulationError, match="ranks"):
            ScheduleExecutor(p, quiet_machine(n_ranks=3))

    def test_trace_collection(self):
        p, (ps, pr, ws, wr) = make_comm_program()
        ex = ScheduleExecutor(p, quiet_machine(), collect_trace=True)
        r = ex.run(sched(BoundOp(pr), BoundOp(ps), BoundOp(ws), BoundOp(wr)))
        assert r.trace is not None
        nets = r.trace.for_resource(0, "net")
        assert len(nets) == 1
        assert nets[0].end == pytest.approx(2.0)

    def test_per_rank_times_reported(self):
        p, (ps, pr, ws, wr) = make_comm_program()
        ex = ScheduleExecutor(p, quiet_machine())
        r = ex.run(sched(BoundOp(pr), BoundOp(ps), BoundOp(ws), BoundOp(wr)))
        assert len(r.per_rank) == 2
        assert r.elapsed == max(r.per_rank)


class TestDeterminism:
    def test_same_sample_same_time(self):
        p, (ps, pr, ws, wr) = make_comm_program()
        machine = quiet_machine()
        machine = MachineConfig(
            n_ranks=2, n_streams=2, gpu=machine.gpu, cpu=machine.cpu,
            net=machine.net, noise=NoiseModel(sigma=0.05, seed=9),
        )
        ex = ScheduleExecutor(p, machine)
        s = sched(BoundOp(pr), BoundOp(ps), BoundOp(ws), BoundOp(wr))
        assert ex.run(s, sample=3).elapsed == ex.run(s, sample=3).elapsed
        assert ex.run(s, sample=3).elapsed != ex.run(s, sample=4).elapsed
