"""Additional edge-case tests for the network engine."""

import pytest

from repro.dag.program import Message
from repro.platform.machine import NetworkModel, Protocol
from repro.platform.noise import NoiseModel
from repro.sim.engine import Environment
from repro.sim.network import Network


def make(env, noise=NoiseModel(), **kwargs):
    defaults = dict(
        latency_s=1.0,
        bandwidth_bytes_per_s=100.0,
        eager_threshold_bytes=0.0,
        protocol=Protocol.RENDEZVOUS,
        serialize_nic=True,
    )
    defaults.update(kwargs)
    return Network(env, NetworkModel(**defaults), noise)


class TestZeroByteMessages:
    def test_zero_bytes_costs_latency_only(self):
        env = Environment()
        net = make(env)
        msg = Message(src=0, dst=1, nbytes=0.0)
        net.post_recv(msg)
        s = net.post_send(msg)
        env.run()
        assert s.completed_at == pytest.approx(1.0)


class TestNoiseOnTransfers:
    def test_noise_changes_wire_time_per_sample(self):
        def run(sample):
            env = Environment()
            net = make(env, noise=NoiseModel(sigma=0.1, seed=4))
            net.sample = sample
            msg = Message(src=0, dst=1, nbytes=1000.0)
            net.post_recv(msg)
            s = net.post_send(msg)
            env.run()
            return s.completed_at

        assert run(0) != run(1)
        assert run(0) == run(0)  # deterministic per sample

    def test_noise_key_includes_peer(self):
        env = Environment()
        net = make(env, noise=NoiseModel(sigma=0.1, seed=4), serialize_nic=False)
        m1 = Message(src=0, dst=1, nbytes=1000.0)
        m2 = Message(src=0, dst=2, nbytes=1000.0)
        net.post_recv(m1)
        net.post_recv(m2)
        s1, s2 = net.post_send(m1), net.post_send(m2)
        env.run()
        assert s1.completed_at != s2.completed_at


class TestManyToOne:
    def test_incast_serializes_at_receiver(self):
        env = Environment()
        net = make(env)
        reqs = []
        for src in (0, 1, 2):
            msg = Message(src=src, dst=3, nbytes=100.0)
            net.post_recv(msg)
            reqs.append(net.post_send(msg))
        env.run()
        ends = sorted(r.completed_at for r in reqs)
        assert ends == [pytest.approx(2.0 * k) for k in (1, 2, 3)]
