"""Tests for the multi-GPU resource extension (paper §VI)."""

import pytest

from repro.dag.graph import Graph
from repro.dag.program import Program
from repro.dag.vertex import gpu_op
from repro.platform.machine import MachineConfig
from repro.schedule.space import DesignSpace
from repro.sim import ScheduleExecutor
from tests.sim.test_executor import quiet_machine


def chain_program():
    g = Graph()
    a, b = gpu_op("a", duration=2.0), gpu_op("b", duration=1.0)
    g.add_edge(a, b)
    return Program(graph=g.with_start_end(), n_ranks=1)


def cross_stream_schedule(space):
    for s in space.enumerate_schedules():
        if s.stream_of("a") != s.stream_of("b"):
            return s
    raise AssertionError("no cross-stream schedule found")


class TestGpuMapping:
    def test_round_robin(self):
        m = MachineConfig(n_streams=4, n_gpus=2)
        assert [m.gpu_of_stream(s) for s in range(4)] == [0, 1, 0, 1]

    def test_single_gpu_all_zero(self):
        m = MachineConfig(n_streams=3, n_gpus=1)
        assert {m.gpu_of_stream(s) for s in range(3)} == {0}

    def test_invalid_gpus_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(n_gpus=0)


class TestCrossGpuPenalty:
    def _machine(self, n_gpus, extra):
        base = quiet_machine(n_ranks=1, n_streams=2)
        import dataclasses

        gpu = dataclasses.replace(base.gpu, cross_gpu_sync_extra_s=extra)
        return dataclasses.replace(base, gpu=gpu, n_gpus=n_gpus)

    def test_same_gpu_no_penalty(self):
        p = chain_program()
        space = DesignSpace(p, n_streams=2)
        s = cross_stream_schedule(space)
        ex = ScheduleExecutor(p, self._machine(n_gpus=1, extra=5.0))
        # Two streams, one GPU: CSWE pays nothing extra; a(2.0) then b(1.0).
        assert ex.run(s).elapsed == pytest.approx(3.0)

    def test_cross_gpu_pays_extra(self):
        p = chain_program()
        space = DesignSpace(p, n_streams=2)
        s = cross_stream_schedule(space)
        ex = ScheduleExecutor(p, self._machine(n_gpus=2, extra=5.0))
        # Streams 0 and 1 live on different GPUs: the stream-wait adds 5.
        assert ex.run(s).elapsed == pytest.approx(3.0 + 5.0)

    def test_same_stream_unaffected(self):
        p = chain_program()
        space = DesignSpace(p, n_streams=2)
        same = next(
            s
            for s in space.enumerate_schedules()
            if s.stream_of("a") == s.stream_of("b")
        )
        for n_gpus in (1, 2):
            ex = ScheduleExecutor(p, self._machine(n_gpus=n_gpus, extra=5.0))
            assert ex.run(same).elapsed == pytest.approx(3.0)

    def test_device_sync_never_pays_penalty(self, spmv_instance, machine):
        """SpMV has no GPU->GPU edges; multi-GPU must not change times
        (the end-of-program drain records fire on their own stream)."""
        import dataclasses

        multi = dataclasses.replace(machine, n_gpus=2)
        ex1 = ScheduleExecutor(spmv_instance.program, machine)
        ex2 = ScheduleExecutor(spmv_instance.program, multi)
        space = DesignSpace(spmv_instance.program, n_streams=2)
        s = next(space.enumerate_schedules())
        assert ex1.run(s).elapsed == pytest.approx(ex2.run(s).elapsed)


class TestChromeTrace:
    def test_export_shape(self, spmv_instance, machine, spmv_schedules):
        import json

        from repro.sim.trace import to_chrome_trace

        ex = ScheduleExecutor(
            spmv_instance.program, machine, collect_trace=True
        )
        result = ex.run(spmv_schedules[0])
        events = to_chrome_trace(result.trace)
        text = json.dumps(events)  # must be JSON-serializable
        assert text
        xs = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(xs) == len(result.trace.records)
        assert metas  # one name record per lane
        assert all(e["dur"] >= 0 for e in xs)
