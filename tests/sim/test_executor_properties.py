"""Property-style invariants of the schedule executor."""

import pytest

from repro.dag.graph import Graph
from repro.dag.program import Program
from repro.dag.vertex import gpu_op
from repro.errors import ScheduleError
from repro.schedule.schedule import BoundOp, Schedule
from repro.sim import ScheduleExecutor


class TestStreamBijectionInvariance:
    """Schedules equivalent under a stream relabeling run in identical
    time — the redundancy the search prunes (paper §III-C2)."""

    def _swap_streams(self, schedule):
        ops = []
        for op in schedule.ops:
            if op.stream is None:
                ops.append(op)
            else:
                ops.append(
                    BoundOp(op.vertex, stream=1 - op.stream, event=op.event)
                )
        return Schedule(ops)

    def test_noiseless_invariance(
        self, spmv_instance, machine, spmv_schedules
    ):
        ex = ScheduleExecutor(spmv_instance.program, machine)
        for s in spmv_schedules[::61]:
            swapped = self._swap_streams(s)
            assert ex.run(s).elapsed == pytest.approx(
                ex.run(swapped).elapsed
            )

    def test_noisy_invariance(
        self, spmv_instance, noisy_machine, spmv_schedules
    ):
        """Noise keys are stream-independent, so the invariance holds even
        with jitter enabled."""
        ex = ScheduleExecutor(spmv_instance.program, noisy_machine)
        s = spmv_schedules[100]
        assert ex.run(s, sample=2).elapsed == pytest.approx(
            ex.run(self._swap_streams(s), sample=2).elapsed
        )


class TestCostMonotonicity:
    def _program(self, d1, d2):
        g = Graph()
        k1, k2 = gpu_op("k1", duration=d1), gpu_op("k2", duration=d2)
        g.add_vertex(k1)
        g.add_vertex(k2)
        return Program(graph=g.with_start_end(), n_ranks=1), k1, k2

    @pytest.mark.parametrize("streams", [(0, 0), (0, 1)])
    def test_longer_kernel_never_faster(self, machine, streams):
        m = machine.with_ranks(1)
        times = []
        for d in (1e-6, 2e-6, 8e-6):
            p, k1, k2 = self._program(d, 3e-6)
            ex = ScheduleExecutor(p, m)
            s = Schedule(
                [BoundOp(k1, stream=streams[0]), BoundOp(k2, stream=streams[1])]
            )
            times.append(ex.run(s).elapsed)
        assert times == sorted(times)

    def test_elapsed_at_least_critical_kernel(self, machine):
        p, k1, k2 = self._program(5e-6, 1e-6)
        ex = ScheduleExecutor(p, machine.with_ranks(1))
        s = Schedule([BoundOp(k1, stream=0), BoundOp(k2, stream=1)])
        assert ex.run(s).elapsed >= 5e-6


class TestElapsedBounds:
    def test_spmv_elapsed_exceeds_transfer_time(
        self, spmv_instance, machine, spmv_schedules
    ):
        """No schedule can beat the pure wire time of its largest message."""
        ex = ScheduleExecutor(spmv_instance.program, machine)
        plan = spmv_instance.program.comm_plan("halo")
        min_wire = machine.net.transfer_time(
            max(m.nbytes for m in plan.messages)
        )
        for s in spmv_schedules[::101]:
            assert ex.run(s).elapsed > min_wire

    def test_per_rank_below_elapsed(self, spmv_executor, spmv_schedules):
        r = spmv_executor.run(spmv_schedules[7])
        assert all(t <= r.elapsed for t in r.per_rank)


class TestWaitBeforePostGuard:
    def test_wait_without_post_rejected(self, spmv_instance, machine):
        """A schedule that waits on a comm group before posting it is a
        programming error the executor reports, not a silent no-op."""
        graph = spmv_instance.program.graph
        wait = graph.vertex("WaitRecv")
        post = graph.vertex("PostRecvs")
        ex = ScheduleExecutor(spmv_instance.program, machine)
        # Minimal bogus launch order: wait first.  DAG-valid schedules
        # can't produce this; the executor still must catch it.
        s = Schedule([BoundOp(wait), BoundOp(post)])
        with pytest.raises(ScheduleError, match="before its messages"):
            ex.run(s)
