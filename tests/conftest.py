"""Shared fixtures.

Heavy artifacts (the SpMV instance, the enumerated design space, the
exhaustive benchmark sweep) are session-scoped: they are deterministic and
read-only, and many test modules consult them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.spmv import SpmvCase, build_spmv_program
from repro.platform import noiseless, perlmutter_like
from repro.schedule import DesignSpace
from repro.search import ExhaustiveSearch
from repro.sim import Benchmarker, MeasurementConfig, ScheduleExecutor


#: Scale used by most tests: 3750 rows, builds in ~10 ms, simulates fast.
TEST_SCALE = 1 / 40


@pytest.fixture(scope="session")
def spmv_case():
    return SpmvCase().scaled(TEST_SCALE)


@pytest.fixture(scope="session")
def spmv_instance(spmv_case):
    return build_spmv_program(spmv_case)


@pytest.fixture(scope="session")
def machine():
    """Noiseless perlmutter-like machine (deterministic single samples)."""
    return noiseless(perlmutter_like())


@pytest.fixture(scope="session")
def noisy_machine():
    return perlmutter_like(noise_sigma=0.01)


@pytest.fixture(scope="session")
def spmv_space(spmv_instance):
    return DesignSpace(spmv_instance.program, n_streams=2)


@pytest.fixture(scope="session")
def spmv_schedules(spmv_space):
    return list(spmv_space.enumerate_schedules())


@pytest.fixture(scope="session")
def spmv_executor(spmv_instance, machine):
    return ScheduleExecutor(spmv_instance.program, machine)


@pytest.fixture(scope="session")
def spmv_benchmarker(spmv_executor):
    return Benchmarker(spmv_executor, MeasurementConfig(max_samples=1))


@pytest.fixture(scope="session")
def spmv_exhaustive(spmv_space, spmv_benchmarker):
    """Exhaustive search result over the test-scale SpMV space."""
    return ExhaustiveSearch(spmv_space, spmv_benchmarker).run()


@pytest.fixture(scope="session")
def spmv_noisy_exhaustive(spmv_instance, spmv_space, noisy_machine):
    executor = ScheduleExecutor(spmv_instance.program, noisy_machine)
    bench = Benchmarker(executor, MeasurementConfig(max_samples=3))
    return ExhaustiveSearch(spmv_space, bench).run()


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
