"""Tests for the paper's MCTS (selection values, phases, termination)."""

import math

import pytest

from repro.search.mcts import MctsConfig, MctsNode, MctsSearch


@pytest.fixture()
def mcts(spmv_space, spmv_benchmarker):
    return MctsSearch(spmv_space, spmv_benchmarker, MctsConfig(seed=0))


class TestValueTerms:
    def _tree(self, spmv_space):
        root = MctsNode(None, None, spmv_space.initial_state())
        action = root.actions[0]
        child = root.child_for(action)
        return root, child

    def test_exploration_matches_formula(self, spmv_space):
        root, child = self._tree(spmv_space)
        root.n_rollouts = 10
        child.n_rollouts = 4
        c = math.sqrt(2)
        assert child.exploration_value(c) == pytest.approx(
            c * math.sqrt(math.log(10) / 4)
        )

    def test_exploration_infinite_for_unvisited(self, spmv_space):
        _, child = self._tree(spmv_space)
        assert child.exploration_value(1.0) == math.inf

    def test_exploration_neg_inf_when_fully_explored(self, spmv_space):
        root, child = self._tree(spmv_space)
        root.n_rollouts = child.n_rollouts = 5
        child.fully_explored = True
        assert child.exploration_value(1.0) == -math.inf

    def test_exploitation_coverage_ratio(self, spmv_space):
        root, child = self._tree(spmv_space)
        root.n_rollouts = child.n_rollouts = 3
        root.t_min, root.t_max = 1.0, 5.0
        child.t_min, child.t_max = 2.0, 4.0
        assert child.exploitation_value() == pytest.approx(0.5)

    def test_exploitation_default_one_below_two_rollouts(self, spmv_space):
        root, child = self._tree(spmv_space)
        root.n_rollouts = 5
        child.n_rollouts = 1
        child.t_min = child.t_max = 1.0
        assert child.exploitation_value() == 1.0

    def test_exploitation_bounded(self, spmv_space):
        """0 <= V <= 1 since child range is inside parent range."""
        root, child = self._tree(spmv_space)
        root.n_rollouts = child.n_rollouts = 4
        root.t_min, root.t_max = 1.0, 3.0
        child.t_min, child.t_max = 1.0, 3.0
        assert 0.0 <= child.exploitation_value() <= 1.0


class TestSearch:
    def test_iterations_produce_samples(self, mcts):
        result = mcts.run(50)
        assert result.n_iterations == 50
        assert len(result) == 50
        assert all(s.time > 0 for s in result.samples)

    def test_samples_are_valid_schedules(self, mcts, spmv_space):
        result = mcts.run(30)
        for sample in result.samples:
            spmv_space.validate_schedule(sample.schedule)

    def test_deterministic_for_seed(self, spmv_space, spmv_benchmarker):
        r1 = MctsSearch(spmv_space, spmv_benchmarker, MctsConfig(seed=7)).run(40)
        r2 = MctsSearch(spmv_space, spmv_benchmarker, MctsConfig(seed=7)).run(40)
        assert [s.schedule for s in r1.samples] == [
            s.schedule for s in r2.samples
        ]

    def test_different_seeds_explore_differently(self, spmv_space, spmv_benchmarker):
        r1 = MctsSearch(spmv_space, spmv_benchmarker, MctsConfig(seed=1)).run(30)
        r2 = MctsSearch(spmv_space, spmv_benchmarker, MctsConfig(seed=2)).run(30)
        assert [s.schedule for s in r1.samples] != [
            s.schedule for s in r2.samples
        ]

    def test_full_exploration_terminates(self, spmv_space, spmv_benchmarker):
        """Running past the space size marks the root fully explored and
        the search stops issuing iterations."""
        search = MctsSearch(spmv_space, spmv_benchmarker, MctsConfig(seed=0))
        result = search.run(5000)
        assert search.root.fully_explored
        assert result.n_iterations <= 5000
        assert search.benchmarker.n_unique_schedules == spmv_space.count()

    def test_backprop_ranges_contain_children(self, mcts):
        mcts.run(80)
        root = mcts.root

        def check(node):
            for ch in node.children.values():
                if ch.n_rollouts:
                    assert node.t_min <= ch.t_min
                    assert node.t_max >= ch.t_max
                    check(ch)

        check(root)
        assert root.n_rollouts == 80

    def test_rollout_counts_sum(self, mcts):
        mcts.run(60)
        # Every rollout passes through exactly one root child.
        total = sum(ch.n_rollouts for ch in mcts.root.children.values())
        assert total == 60

    def test_tree_grows_with_rollouts(self, mcts):
        mcts.run(10)
        small = mcts.tree_size()
        mcts.run(40)
        assert mcts.tree_size() > small

    def test_best_found_is_reasonable(self, spmv_space, spmv_benchmarker, spmv_exhaustive):
        """MCTS at ~40% budget should find within 3% of the true optimum."""
        search = MctsSearch(spmv_space, spmv_benchmarker, MctsConfig(seed=0))
        result = search.run(int(spmv_space.count() * 0.4))
        true_best = spmv_exhaustive.best().time
        assert result.best().time <= true_best * 1.03
