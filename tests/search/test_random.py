"""Tests for the random-sampling baseline."""

from repro.search.random_search import RandomSearch


class TestRandomSearch:
    def test_produces_requested_iterations(self, spmv_space, spmv_benchmarker):
        r = RandomSearch(spmv_space, spmv_benchmarker, seed=0).run(40)
        assert r.n_iterations == 40
        assert len(r) == 40

    def test_valid_schedules(self, spmv_space, spmv_benchmarker):
        r = RandomSearch(spmv_space, spmv_benchmarker, seed=1).run(20)
        for s in r.samples:
            spmv_space.validate_schedule(s.schedule)

    def test_dedup_mode_unique(self, spmv_space, spmv_benchmarker):
        r = RandomSearch(spmv_space, spmv_benchmarker, seed=2, dedup=True).run(50)
        schedules = [s.schedule for s in r.samples]
        assert len(set(schedules)) == len(schedules)

    def test_deterministic_for_seed(self, spmv_space, spmv_benchmarker):
        a = RandomSearch(spmv_space, spmv_benchmarker, seed=3).run(15)
        b = RandomSearch(spmv_space, spmv_benchmarker, seed=3).run(15)
        assert [s.schedule for s in a.samples] == [s.schedule for s in b.samples]
