"""Tests for the beam-search baseline."""

import pytest

from repro.search.beam import BeamSearch


class TestBeamSearch:
    def test_respects_budget(self, spmv_space, spmv_benchmarker):
        r = BeamSearch(spmv_space, spmv_benchmarker, width=4).run(50)
        assert r.n_iterations <= 50
        assert len(r) == r.n_iterations
        assert r.n_iterations > 0

    def test_valid_schedules(self, spmv_space, spmv_benchmarker):
        r = BeamSearch(spmv_space, spmv_benchmarker, width=4, seed=1).run(40)
        for s in r.samples[:10]:
            spmv_space.validate_schedule(s.schedule)

    def test_deterministic_for_seed(self, spmv_space, spmv_benchmarker):
        a = BeamSearch(spmv_space, spmv_benchmarker, width=3, seed=5).run(30)
        b = BeamSearch(spmv_space, spmv_benchmarker, width=3, seed=5).run(30)
        assert [s.schedule for s in a.samples] == [
            s.schedule for s in b.samples
        ]

    def test_finds_near_optimum_with_budget(
        self, spmv_space, spmv_benchmarker, spmv_exhaustive
    ):
        r = BeamSearch(
            spmv_space, spmv_benchmarker, width=8, rollouts_per_candidate=1
        ).run(200)
        assert r.best().time <= spmv_exhaustive.best().time * 1.05

    def test_invalid_params_rejected(self, spmv_space, spmv_benchmarker):
        with pytest.raises(ValueError):
            BeamSearch(spmv_space, spmv_benchmarker, width=0)
        with pytest.raises(ValueError):
            BeamSearch(
                spmv_space, spmv_benchmarker, rollouts_per_candidate=0
            )

    def test_wider_beam_never_worse_best(
        self, spmv_space, spmv_benchmarker
    ):
        narrow = BeamSearch(
            spmv_space, spmv_benchmarker, width=1, seed=2
        ).run(120)
        wide = BeamSearch(
            spmv_space, spmv_benchmarker, width=16, seed=2
        ).run(120)
        # Not a theorem for fixed budgets, but holds robustly on this
        # space; regression-guards the scoring plumbing.
        assert wide.best().time <= narrow.best().time * 1.10
