"""Tests for exhaustive search and the SearchResult container."""

import numpy as np

from repro.search.base import SearchResult
from repro.search.exhaustive import ExhaustiveSearch


class TestExhaustive:
    def test_covers_entire_space(self, spmv_exhaustive, spmv_space):
        assert len(spmv_exhaustive) == spmv_space.count()
        assert len(set(spmv_exhaustive.schedules())) == spmv_space.count()

    def test_iteration_cap(self, spmv_space, spmv_benchmarker):
        r = ExhaustiveSearch(spmv_space, spmv_benchmarker).run(10)
        assert len(r) == 10

    def test_spread_matches_paper_shape(self, spmv_exhaustive):
        """Fastest-to-slowest spread in the paper's ballpark (1.47x)."""
        spread = spmv_exhaustive.worst().time / spmv_exhaustive.best().time
        assert 1.2 < spread < 2.0


class TestSearchResult:
    def test_unique_keeps_first(self, spmv_exhaustive):
        r = SearchResult(strategy="t")
        s = spmv_exhaustive.samples[0].schedule
        r.add(s, 1.0)
        r.add(s, 2.0)
        u = r.unique()
        assert len(u) == 1
        assert u.samples[0].time == 1.0

    def test_times_vector(self, spmv_exhaustive):
        t = spmv_exhaustive.times()
        assert isinstance(t, np.ndarray)
        assert len(t) == len(spmv_exhaustive)
        assert (t > 0).all()

    def test_best_worst(self, spmv_exhaustive):
        assert (
            spmv_exhaustive.best().time
            == spmv_exhaustive.times().min()
        )
        assert (
            spmv_exhaustive.worst().time
            == spmv_exhaustive.times().max()
        )
