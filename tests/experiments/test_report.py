"""Tests for the markdown report generator."""

import pytest

from repro.apps.spmv import SpmvCase
from repro.experiments.workbench import SpmvWorkbench
from repro.platform import perlmutter_like
from repro.report import generate_report
from repro.sim import MeasurementConfig


@pytest.fixture(scope="module")
def report():
    wb = SpmvWorkbench(
        case=SpmvCase().scaled(1 / 80),
        machine=perlmutter_like(noise_sigma=0.01),
        measurement=MeasurementConfig(max_samples=1),
    )
    return generate_report(wb, iterations=[20, wb.space.count()])


def test_contains_all_sections(report):
    for heading in (
        "# Design-rule reproduction report",
        "## Platform",
        "## Figure 1",
        "## Figure 4",
        "## Figure 5",
        "## Figure 6",
        "## Table V",
        "## Tables VI–VIII",
    ):
        assert heading in report


def test_code_blocks_balanced(report):
    assert report.count("```") % 2 == 0


def test_mentions_space_size(report):
    assert "540 implementations" in report


def test_rule_tables_optional():
    wb = SpmvWorkbench(
        case=SpmvCase().scaled(1 / 80),
        machine=perlmutter_like(noise_sigma=0.01),
        measurement=MeasurementConfig(max_samples=1),
    )
    out = generate_report(
        wb, include_rule_tables=False, iterations=[20, wb.space.count()]
    )
    assert "Tables VI–VIII" not in out
