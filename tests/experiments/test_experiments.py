"""Tests for the canned paper experiments (at test scale)."""

import numpy as np
import pytest

from repro.apps.spmv import SpmvCase
from repro.experiments import (
    SpmvWorkbench,
    run_exploitation_ablation,
    run_fig1,
    run_fig4,
    run_fig5,
    run_fig6,
    run_mcts_vs_random,
    run_noise_sensitivity,
    run_rule_tables,
    run_table5,
)
from repro.platform import perlmutter_like
from repro.sim import MeasurementConfig


@pytest.fixture(scope="module")
def wb():
    return SpmvWorkbench(
        case=SpmvCase().scaled(1 / 40),
        machine=perlmutter_like(noise_sigma=0.01),
        measurement=MeasurementConfig(max_samples=2),
    )


class TestFig1:
    def test_curve_shape(self, wb):
        r = run_fig1(wb)
        assert r.n_implementations == 540
        assert np.all(np.diff(r.sorted_times) >= 0)
        assert 1.1 < r.speedup < 2.5
        assert "speedup" in r.report()

    def test_ascii_plot_renders(self, wb):
        out = run_fig1(wb).ascii_plot(width=40, height=8)
        assert "implementations sorted" in out
        assert "#" in out


class TestFig4:
    def test_labeling_report(self, wb):
        r = run_fig4(wb)
        assert 2 <= r.labeling.n_classes <= 4
        assert "classes" in r.report()


class TestFig5:
    def test_trace_starts_at_two_and_improves(self, wb):
        r = run_fig5(wb)
        assert r.trace.leaf_nodes[0] == 2
        assert min(r.trace.errors) == r.final_error
        assert r.final_error <= r.trace.errors[0]
        assert "Algorithm 1" in r.report()


class TestFig6:
    def test_six_leaf_tree(self, wb):
        r = run_fig6(wb)
        assert r.tree.n_leaves == 6
        assert len(r.rulesets) == 6
        assert "samples=" in r.rendered
        # Rule text uses the paper's phrasing.
        assert any(
            "before" in rule.text or "stream" in rule.text
            for rs in r.rulesets
            for rule in rs.rules
        )


class TestTable5:
    def test_accuracy_increases_to_one(self, wb):
        r = run_table5(wb, iterations=[25, 100, 540])
        assert r.accuracies[-1] == 1.0
        assert r.accuracies[0] <= r.accuracies[-1]
        assert all(0 <= a <= 1 for a in r.accuracies)
        assert "Table V" in r.report()


class TestRuleTables:
    def test_cells_cover_classes_and_columns(self, wb):
        r = run_rule_tables(wb, iterations=[50, 540])
        assert r.cells  # at least one class
        for cls, cols in r.cells.items():
            assert set(cols) == {"50", "540"}
        # Full-budget column must be exact (canonical vs itself).
        from repro.rules.compare import Annotation

        for cls, cols in r.cells.items():
            for res in cols["540"]:
                assert res.annotation is Annotation.EXACT

    def test_report_renders(self, wb):
        out = run_rule_tables(wb, iterations=[50, 540]).report()
        assert "+" in out and "|" in out


class TestAblations:
    def test_mcts_vs_random_rows(self, wb):
        r = run_mcts_vs_random(wb, iterations=[40], seeds=(0, 1))
        assert len(r.rows) == 3  # one per strategy
        strategies = {row[0] for row in r.rows}
        assert strategies == {"mcts", "random", "beam"}

    def test_exploitation_ablation_rows(self, wb):
        r = run_exploitation_ablation(wb, iterations=[40], seeds=(0,))
        assert {row[0] for row in r.rows} == {"coverage-V", "plain-UCT"}

    def test_noise_sensitivity(self, wb):
        r = run_noise_sensitivity(wb, sigmas=(0.0, 0.02))
        assert len(r.rows) == 2
        for row in r.rows:
            assert int(row[1]) >= 1  # at least one class
        assert "sigma" in r.report()
