"""Tests for the shared experiment workbench."""

import pytest

from repro.apps.spmv import SpmvCase
from repro.experiments.workbench import SpmvWorkbench, default_workbench
from repro.platform import perlmutter_like
from repro.sim import MeasurementConfig


@pytest.fixture(scope="module")
def wb():
    return SpmvWorkbench(
        case=SpmvCase().scaled(1 / 80),
        machine=perlmutter_like(noise_sigma=0.01),
        measurement=MeasurementConfig(max_samples=1),
    )


class TestCaching:
    def test_instance_cached(self, wb):
        assert wb.instance is wb.instance

    def test_space_cached(self, wb):
        assert wb.space is wb.space

    def test_full_search_cached(self, wb):
        a = wb.full_search()
        b = wb.full_search()
        assert a is b
        assert len(a) == wb.space.count()

    def test_full_pipeline_cached(self, wb):
        assert wb.full_pipeline() is wb.full_pipeline()

    def test_benchmarker_shared_with_pipelines(self, wb):
        pipe = wb.pipeline(strategy="mcts")
        assert pipe.benchmarker is wb.benchmarker


class TestIterationGrid:
    def test_grid_fractions(self, wb):
        grid = wb.iteration_grid()
        n = wb.space.count()
        assert grid[-1] == n
        assert grid == sorted(grid)
        assert grid[0] >= 2

    def test_strategies_construct(self, wb):
        assert wb.mcts(seed=1).config.seed == 1
        assert wb.random(seed=2).rng is not None


class TestDefaultWorkbench:
    def test_memoized(self):
        a = default_workbench(scale=0.0125, noise_sigma=0.01)
        b = default_workbench(scale=0.0125, noise_sigma=0.01)
        assert a is b

    def test_scale_below_one_shrinks(self):
        wb = default_workbench(scale=0.0125, noise_sigma=0.01)
        assert wb.case.n_rows < SpmvCase().n_rows
