"""Tests for the cross-input rule-generalization extension."""

import pytest

from repro.apps.spmv import SpmvCase
from repro.experiments import run_multi_input
from repro.platform import noiseless, perlmutter_like
from repro.sim import MeasurementConfig


@pytest.fixture(scope="module")
def result():
    base = SpmvCase().scaled(1 / 80)
    cases = [
        ("a", base),
        (
            "b",
            SpmvCase(
                n_rows=base.n_rows,
                nnz=base.nnz,
                bandwidth=base.n_rows / 8,
                n_ranks=4,
                seed=0,
            ),
        ),
    ]
    return run_multi_input(
        cases,
        noiseless(perlmutter_like()),
        measurement=MeasurementConfig(max_samples=1),
    )


def test_requires_two_inputs():
    with pytest.raises(ValueError, match="at least two"):
        run_multi_input(
            [("only", SpmvCase().scaled(1 / 80))],
            noiseless(perlmutter_like()),
        )


def test_partition_generalizing_vs_specific(result):
    for cls in result.generalizing:
        # Disjoint partition of the observed union.
        assert not (result.generalizing[cls] & result.input_specific[cls])
        union = frozenset().union(*result.observed[cls].values())
        assert result.generalizing[cls] | result.input_specific[cls] == union


def test_generalizing_rules_hold_everywhere(result):
    for cls, rules in result.generalizing.items():
        for name in result.input_names:
            assert rules <= result.observed[cls][name]


def test_report_lists_inputs(result):
    text = result.report()
    for name in result.input_names:
        assert name in text
