#!/usr/bin/env python
"""Baseline comparison the paper proposes in §VI: MCTS vs random sampling.

For several exploration budgets, generate design rules from an MCTS subset
and from a uniformly random subset, then measure how well each classifies
the full design space (the paper's Table V accuracy metric).

Run:  python examples/mcts_vs_random.py [--scale 0.025]
"""

import argparse

from repro.apps.spmv import SpmvCase
from repro.experiments import SpmvWorkbench, run_mcts_vs_random, run_table5
from repro.platform import perlmutter_like
from repro.sim import MeasurementConfig


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", type=float, default=0.025,
                    help="matrix scale (default small for a fast demo)")
    args = ap.parse_args()

    case = SpmvCase() if args.scale >= 1 else SpmvCase().scaled(args.scale)
    wb = SpmvWorkbench(
        case=case,
        machine=perlmutter_like(noise_sigma=0.01),
        measurement=MeasurementConfig(max_samples=2),
    )
    n = wb.space.count()
    print(f"space: {n} implementations")

    print("\nTable V protocol with MCTS:")
    print(run_table5(wb).report())

    print("\nhead-to-head at partial budgets (mean over 3 seeds):")
    budgets = [max(2, n // 20), max(4, n // 10), max(8, n // 5)]
    print(run_mcts_vs_random(wb, iterations=budgets).report())


if __name__ == "__main__":
    main()
