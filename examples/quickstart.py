#!/usr/bin/env python
"""Quickstart: generate design rules for a small CUDA+MPI program.

Builds a toy program (two independent GPU kernels and a CPU reduction),
explores its entire design space on the simulated platform, and prints the
resulting performance classes and design rules — the full pipeline of the
paper's Figure 2 in ~40 lines of user code.

Run:  python examples/quickstart.py
"""

from repro import (
    DesignRulePipeline,
    Graph,
    MeasurementConfig,
    PipelineConfig,
    Program,
    cpu_op,
    gpu_op,
    noiseless,
    perlmutter_like,
)


def build_program() -> Program:
    """Two independent kernels feed a CPU reduction."""
    k1 = gpu_op("k1", duration=5e-6)   # 5 us kernel
    k2 = gpu_op("k2", duration=3e-6)   # 3 us kernel
    reduce_op = cpu_op("reduce", duration=1e-6)
    g = Graph()
    g.add_edge(k1, reduce_op)
    g.add_edge(k2, reduce_op)
    return Program(graph=g.with_start_end(), n_ranks=1, name="toy")


def main() -> None:
    program = build_program()
    machine = noiseless(perlmutter_like(n_ranks=1))
    pipeline = DesignRulePipeline(
        program,
        machine,
        PipelineConfig(
            n_streams=2,
            strategy="exhaustive",  # the toy space is tiny: benchmark it all
            measurement=MeasurementConfig(max_samples=1),
        ),
    )
    result = pipeline.run()

    print(f"program: {program.name}")
    print(result.summary())
    print()
    print("design rules (per decision-tree leaf):")
    for rs in result.rulesets:
        c = result.labeling.classes[rs.predicted_class]
        print(
            f"  class {rs.predicted_class} "
            f"[{c.t_min * 1e6:.2f}-{c.t_max * 1e6:.2f} us] "
            f"({rs.n_samples} samples):"
        )
        for rule in rs:
            print(f"    - {rule.text}")
    # The expected insight: putting k1 and k2 on different streams is what
    # separates the fast class from the slow class.
    fast_rules = {
        rule.text
        for rs in result.rulesets_for_class(0)
        for rule in rs.rules
    }
    print()
    print(f"fastest-class rules mention streams: "
          f"{any('stream' in r for r in fast_rules)}")


if __name__ == "__main__":
    main()
