#!/usr/bin/env python
"""Writing programs directly against the simulated MPI layer.

Shows the mpi4py-style generator API (`repro.mpi`): a distributed
dot-product with non-blocking point-to-point plus the collectives, and the
reference distributed SpMV, all timed on the simulated platform.

Run:  python examples/simulated_mpi.py
"""

import numpy as np

from repro import SpmvCase, build_spmv_program, noiseless, perlmutter_like
from repro.apps.spmv.reference import reference_spmv
from repro.mpi import run_spmd


def distributed_dot(comm):
    """Each rank owns a slice; allreduce the partial dot products."""
    rng = np.random.default_rng(comm.rank)
    a = rng.standard_normal(1000)
    b = rng.standard_normal(1000)
    yield from comm.compute(2e-6)  # local multiply-add time
    partial = np.array([a @ b])
    total = yield from comm.allreduce_sum(partial)
    yield from comm.barrier()
    return float(total[0])


def main() -> None:
    machine = noiseless(perlmutter_like())

    results, elapsed = run_spmd(machine, distributed_dot)
    print(f"distributed dot product on {machine.n_ranks} ranks:")
    print(f"  every rank agrees: {len(set(results)) == 1}")
    print(f"  simulated time: {elapsed * 1e6:.2f} us")

    inst = build_spmv_program(SpmvCase().scaled(0.1))
    y, t = reference_spmv(inst, machine)
    ok = np.allclose(y, inst.reference_result())
    print(f"\nreference MPI SpMV ({inst.program.name}):")
    print(f"  y == A @ x: {ok}")
    print(f"  simulated time: {t * 1e6:.2f} us")


if __name__ == "__main__":
    main()
