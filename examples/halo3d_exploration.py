#!/usr/bin/env python
"""Extension (paper §VI): exploring the 3-D halo-exchange design space.

The per-dimension fine-grained halo program has a design space far beyond
enumeration (the 2-axis variant already has ~2.3 billion schedules).  This
example sizes the spaces, runs MCTS on the 2-axis program, and prints the
rules that distinguish fast from slow halo exchanges.

Run:  python examples/halo3d_exploration.py [--iterations 300]
"""

import argparse

from repro import (
    DesignRulePipeline,
    DesignSpace,
    GridCase,
    MeasurementConfig,
    PipelineConfig,
    build_halo_program,
    perlmutter_like,
)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--iterations", type=int, default=300)
    args = ap.parse_args()

    case = GridCase(nx=256, ny=256, nz=64, px=2, py=2, pz=1)
    machine = perlmutter_like(noise_sigma=0.01)

    print("design-space sizes (2 streams):")
    for axes, label in [((0,), "x only"), ((0, 1), "x+y")]:
        program = build_halo_program(case, axes=axes)
        space = DesignSpace(program, n_streams=2)
        print(f"  {label:7s}: {space.count():,} schedules")

    program = build_halo_program(case, axes=(0, 1))
    pipeline = DesignRulePipeline(
        program,
        machine,
        PipelineConfig(
            strategy="mcts",
            n_iterations=args.iterations,
            measurement=MeasurementConfig(max_samples=2),
        ),
    )
    result = pipeline.run()
    print()
    print(result.summary())
    print("\ntop rulesets per class:")
    for c in result.labeling.classes:
        print(f"  == class {c.label} "
              f"[{c.t_min * 1e6:.1f}-{c.t_max * 1e6:.1f} us] ==")
        for rs in result.rulesets_for_class(c.label)[:2]:
            for rule in rs:
                print(f"    - {rule.text}")


if __name__ == "__main__":
    main()
