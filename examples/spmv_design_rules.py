#!/usr/bin/env python
"""The paper's headline experiment: design rules for distributed SpMV.

Builds the paper's SpMV instance (150k rows, 1.5M non-zeros, band-diagonal,
4 ranks, 2 streams), explores the design space with MCTS, labels the
performance classes, trains the decision tree, and prints the design rules
— then verifies the fastest discovered schedule computes the correct
``y = A x`` and shows its execution timeline.

Run:  python examples/spmv_design_rules.py [--scale 0.1] [--iterations 200]
"""

import argparse

import numpy as np

from repro import (
    Benchmarker,
    DesignRulePipeline,
    Gantt,
    MeasurementConfig,
    PipelineConfig,
    ScheduleExecutor,
    SpmvCase,
    build_spmv_program,
    perlmutter_like,
)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", type=float, default=1.0,
                    help="matrix scale (1.0 = the paper's 150k rows)")
    ap.add_argument("--iterations", type=int, default=200,
                    help="MCTS iterations (paper Table V uses 50..400)")
    args = ap.parse_args()

    case = SpmvCase() if args.scale >= 1 else SpmvCase().scaled(args.scale)
    inst = build_spmv_program(case)
    machine = perlmutter_like(noise_sigma=0.01)
    print(f"program: {inst.program.name}")
    print(f"design space: "
          f"{__import__('repro').DesignSpace(inst.program, 2).count()} "
          f"implementations")

    pipeline = DesignRulePipeline(
        inst.program,
        machine,
        PipelineConfig(
            strategy="mcts",
            n_iterations=args.iterations,
            measurement=MeasurementConfig(max_samples=3),
        ),
    )
    result = pipeline.run()
    print()
    print(result.summary())

    print("\ndesign rules per performance class "
          "(paper §IV-D; class 0 = fastest):")
    for c in result.labeling.classes:
        print(f"  == class {c.label} "
              f"[{c.t_min * 1e6:.1f}-{c.t_max * 1e6:.1f} us] ==")
        for rs in result.rulesets_for_class(c.label)[:3]:
            print(f"    ruleset ({rs.n_samples} samples):")
            for rule in rs:
                print(f"      - {rule.text}")

    # Verify the best discovered schedule numerically and show its timeline.
    best = result.search.best().schedule
    executor = ScheduleExecutor(
        inst.program, machine,
        collect_trace=True, payload_init=inst.payload_init,
    )
    run = executor.run(best)
    ok = np.allclose(inst.gather_result(run.payload), inst.reference_result())
    print(f"\nbest schedule: {best}")
    print(f"numeric check (y == A@x): {ok};  hazard free: {run.hazard_free}")
    print("\ntimeline of rank 1 (best schedule):")
    print(Gantt(run.trace, width=90).render(ranks=[1]))


if __name__ == "__main__":
    main()
